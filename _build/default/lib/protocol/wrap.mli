(** Protocol combinators. *)

val dedup : ?window:int -> Protocol.factory -> Protocol.factory
(** Filter duplicate user packets (same message id) before the inner
    protocol sees them, making any protocol tolerant of network
    duplication ({!Sim.faults}). Control packets pass through — the inner
    protocol owns their semantics. The seen-set is a bounded
    {!Reliable.Window} of [window] slots (default 4096): memory is fixed
    regardless of run length, and ids older than the window are treated
    as already seen, which is exact as long as the network cannot delay a
    first arrival past [window] fresher messages. Name becomes
    ["<inner>+dedup"]. *)

val reliable :
  ?config:Reliable.config ->
  ?registry:Mo_obs.Metrics.t ->
  Protocol.factory ->
  Protocol.factory
(** {!Reliable.wrap}: the ack/retransmit recovery layer. Makes any
    protocol live under packet loss, partitions within the retry budget,
    and crash-restart — without restoring order (see {!Reliable}). *)

val count_deliveries : Protocol.factory -> int array ref -> Protocol.factory
(** Observe deliveries per process without changing behaviour; used by
    tests and examples that need application-side visibility. The array is
    (re)initialized at the first [make]. *)

val instrument : Mo_obs.Metrics.t -> Protocol.factory -> Protocol.factory
(** Record the protocol-layer cost accounting into the registry without
    changing behaviour: counters [proto.invokes_total],
    [proto.packets_total], [proto.user_sends_total],
    [proto.control_sends_total], [proto.deliveries_total],
    [proto.tag_bytes], [proto.control_bytes], and the gauge
    [proto.max_pending] (high-watermark of {!Protocol.instance}'s
    [pending_depth], sampled after every handler). Counters aggregate over
    all processes; register the factory against a fresh registry per run to
    compare protocols. Framed packets ({!Protocol.action}'s [Send_framed])
    are accounted by their inner packet; retransmissions are not
    double-counted here — they land in [net.retransmits_total]. *)
