(** Protocol combinators. *)

val dedup : Protocol.factory -> Protocol.factory
(** Filter duplicate user packets (same message id) before the inner
    protocol sees them, making any protocol tolerant of network
    duplication ({!Sim.faults}). Control packets pass through — the inner
    protocol owns their semantics. Name becomes ["<inner>+dedup"]. *)

val count_deliveries : Protocol.factory -> int array ref -> Protocol.factory
(** Observe deliveries per process without changing behaviour; used by
    tests and examples that need application-side visibility. The array is
    (re)initialized at the first [make]. *)
