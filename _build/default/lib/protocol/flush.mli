(** Flush channels (F-channels [1]; the flush primitives of §2 and §6).

    A per-channel protocol offering the four send primitives as
    {!Message.flush_kind} on the workload op:

    - [Ordinary] — no ordering against other ordinary messages;
    - [Forward] — delivered only after everything sent earlier on the
      channel (implements forward-flush, the §6 red-message guarantee);
    - [Backward] — a barrier: nothing sent after it on the channel is
      delivered before it;
    - [Two_way] — both.

    Tags carry the channel seqno plus the seqno of the latest preceding
    barrier, so the protocol is tagged — confirming the paper's claim that
    flush orderings need no control messages (their predicates have
    order-1 cycles). *)

val factory : Protocol.factory

val selective_forward : color:int -> Protocol.factory
(** Only messages of the given color pay the ordering cost: a colored
    message is delivered after every earlier message on its channel
    (forward-flush semantics for the markers), everything else is
    delivered on arrival. Implements the {e local forward-flush}
    specification of §6 — the forbidden instances are same-channel with
    the overtaker colored, and same-destination deliveries are totally
    ordered locally, so inhibiting only colored deliveries suffices.
    Cheaper than FIFO in buffering: uncolored traffic never waits. *)

val selective_backward : color:int -> Protocol.factory
(** The dual: every message waits for the colored messages sent before it
    on its channel (backward-flush semantics: nothing overtakes a
    marker); colored messages themselves are not otherwise delayed. *)
