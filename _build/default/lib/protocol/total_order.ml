type pending_group = {
  local_seq : int;
  mutable copies : Protocol.intent list; (* collected until granted *)
}

type state = {
  me : int;
  (* origin side *)
  mutable next_local_seq : int;
  mutable current_group : int option; (* workload group of the open batch *)
  mutable pending : pending_group list; (* awaiting grant, FIFO *)
  mutable own_tickets : int list; (* tickets of my own broadcasts *)
  (* receiver side *)
  buffer : (int, int) Hashtbl.t; (* ticket -> msg id *)
  mutable next_expected : int;
  (* sequencer side (process 0 only) *)
  mutable next_ticket : int;
}

let sequencer = 0

let ctl kind data = { Message.kind; data }

let make ~nprocs:_ ~me =
  let st =
    {
      me;
      next_local_seq = 0;
      current_group = None;
      pending = [];
      own_tickets = [];
      buffer = Hashtbl.create 32;
      next_expected = 0;
      next_ticket = 0;
    }
  in
  let rec drain acc =
    if List.mem st.next_expected st.own_tickets then begin
      st.next_expected <- st.next_expected + 1;
      drain acc
    end
    else
      match Hashtbl.find_opt st.buffer st.next_expected with
      | Some id ->
          Hashtbl.remove st.buffer st.next_expected;
          st.next_expected <- st.next_expected + 1;
          drain (Protocol.Deliver id :: acc)
      | None -> List.rev acc
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        (* copies of one broadcast arrive consecutively; open a batch on
           the first copy. Requests are serialized — at most one
           outstanding per origin — so that same-origin tickets respect
           program order (two in-flight requests could be reordered by the
           network and invert causality). *)
        if st.current_group <> intent.group then begin
          st.current_group <- intent.group;
          let local_seq = st.next_local_seq in
          st.next_local_seq <- local_seq + 1;
          st.pending <- st.pending @ [ { local_seq; copies = [ intent ] } ];
          if List.length st.pending = 1 then
            [
              Protocol.Send_control
                { dst = sequencer; ctl = ctl "toreq" [| st.me; local_seq |] };
            ]
          else [] (* queued; requested when the head is granted *)
        end
        else begin
          (match List.rev st.pending with
          | last :: _ -> last.copies <- intent :: last.copies
          | [] -> invalid_arg "Total_order: copy without an open batch");
          []
        end);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User { id; tag = Message.Ticket t; _ } ->
            ignore from;
            Hashtbl.replace st.buffer t id;
            drain []
        | Message.User _ ->
            invalid_arg "Total_order: user message without ticket"
        | Message.Control { kind = "toreq"; data } ->
            let origin = data.(0) and local_seq = data.(1) in
            let t = st.next_ticket in
            st.next_ticket <- t + 1;
            [
              Protocol.Send_control
                { dst = origin; ctl = ctl "togrant" [| t; local_seq |] };
            ]
        | Message.Control { kind = "togrant"; data } -> (
            let t = data.(0) and local_seq = data.(1) in
            match st.pending with
            | pg :: rest when pg.local_seq = local_seq ->
                st.pending <- rest;
                st.own_tickets <- t :: st.own_tickets;
                let sends =
                  List.rev_map
                    (fun (i : Protocol.intent) ->
                      Protocol.Send_user
                        {
                          Message.id = i.id;
                          src = st.me;
                          dst = i.dst;
                          color = i.color;
                          payload = i.payload;
                          tag = Message.Ticket t;
                        })
                    pg.copies
                in
                let next_req =
                  match rest with
                  | next :: _ ->
                      [
                        Protocol.Send_control
                          {
                            dst = sequencer;
                            ctl = ctl "toreq" [| st.me; next.local_seq |];
                          };
                      ]
                  | [] -> []
                in
                (* sends must precede the drained deliveries in the recorded
                   sequence: a delivery unblocked by this grant would
                   otherwise appear causally before our own sends *)
                sends @ next_req @ drain []
            | _ -> invalid_arg "Total_order: grant out of order")
        | Message.Control { kind; _ } ->
            invalid_arg ("Total_order: unknown control kind " ^ kind)
        | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth =
      (fun () ->
        Hashtbl.length st.buffer
        + List.fold_left
            (fun acc pg -> acc + List.length pg.copies)
            0 st.pending);
  }

let factory =
  { Protocol.proto_name = "total-order"; kind = Protocol.General; make }
