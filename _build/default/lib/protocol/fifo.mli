(** FIFO channels via per-channel sequence numbers.

    Tags each user message with its channel sequence number; the receiver
    delivers each channel's messages in sequence order, buffering
    out-of-order arrivals. Implements the FIFO specification of §6 (a
    guarded order-1 predicate), and is the protocol sketched in Figure 2:
    the delivery of [x2] is delayed until [x1] has been delivered. *)

val factory : Protocol.factory
