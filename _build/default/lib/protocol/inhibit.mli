(** The paper's inhibitory-protocol formalism, executed literally (§3.2).

    A protocol here is the vector of enabled-event sets
    [(P_1(H), …, P_n(H))]: a function from the current system run to the
    controllable pending events each process may execute next. Invokes and
    receives are always enabled (the protocol has no control over
    star-events); only pending sends and deliveries ([C_i(H)]) may be
    inhibited. [X_P] — the set of runs possible under the protocol — is
    computed by exhaustive exploration of the inductive definition, which
    is feasible for the small universes used by the Lemma 2 experiments.

    The class conditions of §3.2 become executable checks:
    - tagless: [H_i = G_i ⟹ P_i(H) = P_i(G)];
    - tagged: [CausalPast_i(H) = CausalPast_i(G) ⟹ P_i(H) = P_i(G)];
    - liveness: some pending event is enabled whenever one exists. *)

type t = {
  name : string;
  enabled : Mo_order.Sys_run.t -> int -> Mo_order.Event.Sys.t list;
      (** [enabled h i ⊆ C_i(h)]: the controllable events process [i] may
          execute in run [h]. Events outside [C_i(h)] are ignored. *)
}

val enable_all : t
(** The trivial protocol: [P_i(H) = I_i ∪ R_i ∪ C_i]. *)

val fifo : t
(** Inhibit a delivery until all earlier sends on the same channel are
    delivered (the protocol of Figure 2). *)

val causal : t
(** Inhibit a delivery at [i] until every message to [i] sent causally
    earlier is delivered. A global-view oracle; the tagged condition is
    what makes it implementable by tagging (checked separately). *)

val sync : t
(** Inhibit a send while any sent message is still undelivered: messages
    are serialized one at a time, so every complete run is logically
    synchronous. This oracle consults events {e concurrent} with the
    deciding process — it fails the tagged knowledge condition, which is
    exactly why implementing it for real takes control messages
    (Theorem 4.2). *)

val reachable :
  nprocs:int -> msgs:(int * int) array -> t -> Mo_order.Sys_run.t list
(** All of [X_P] for the given finite universe of messages (every message
    is eventually requested, in any order). *)

val complete_runs :
  nprocs:int -> msgs:(int * int) array -> t -> Mo_order.Run.t list
(** User views of the complete runs in [X_P] — the set [X̄_P] of §3.3. *)

val live : nprocs:int -> msgs:(int * int) array -> t -> bool
(** The liveness condition holds at every reachable run. *)

val respects_tagless_condition :
  nprocs:int -> msgs:(int * int) array -> t -> bool
(** Checked over all pairs of reachable runs. *)

val respects_tagged_condition :
  nprocs:int -> msgs:(int * int) array -> t -> bool
