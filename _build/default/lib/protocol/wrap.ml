let dedup (inner : Protocol.factory) =
  let make ~nprocs ~me =
    let i = inner.Protocol.make ~nprocs ~me in
    let seen = Hashtbl.create 64 in
    {
      Protocol.on_invoke = i.Protocol.on_invoke;
      on_packet =
        (fun ~now ~from packet ->
          match packet with
          | Message.User u ->
              if Hashtbl.mem seen u.Message.id then []
              else begin
                Hashtbl.replace seen u.Message.id ();
                i.Protocol.on_packet ~now ~from packet
              end
          | Message.Control _ -> i.Protocol.on_packet ~now ~from packet);
    }
  in
  { inner with Protocol.proto_name = inner.Protocol.proto_name ^ "+dedup"; make }

let count_deliveries (inner : Protocol.factory) counters =
  let make ~nprocs ~me =
    if Array.length !counters <> nprocs then counters := Array.make nprocs 0;
    let i = inner.Protocol.make ~nprocs ~me in
    let observe actions =
      List.iter
        (fun (a : Protocol.action) ->
          match a with
          | Protocol.Deliver _ -> !counters.(me) <- !counters.(me) + 1
          | Protocol.Send_user _ | Protocol.Send_control _ -> ())
        actions;
      actions
    in
    {
      Protocol.on_invoke =
        (fun ~now intent -> observe (i.Protocol.on_invoke ~now intent));
      on_packet =
        (fun ~now ~from packet ->
          observe (i.Protocol.on_packet ~now ~from packet));
    }
  in
  { inner with Protocol.make = make }
