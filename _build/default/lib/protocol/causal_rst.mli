(** Causal ordering by the Raynal–Schiper–Toueg protocol [20].

    Each process maintains an [n × n] matrix [SENT] — its knowledge of how
    many messages each process has sent to each process — and a vector
    [DELIV] of per-sender delivered counts. A message from [i] to [j] is
    tagged with the sender's matrix (snapshotted before recording the
    send); [j] delivers it once [DELIV[k] ≥ ST[k][j]] for every [k], i.e.
    once every message destined to [j] that was sent causally before has
    been delivered.

    This is the canonical {e tagged} protocol: its reachable user-view set
    is exactly [X_co], making it the universal implementation for every
    specification classified [Tagged] (Theorem 1.2). The paper's §2 remark —
    that no higher-dimensional tagging can restrict ordering further — is
    Theorem 1 applied to this matrix. *)

val factory : Protocol.factory
