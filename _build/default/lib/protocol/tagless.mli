(** The do-nothing protocol: send on invoke, deliver on receipt.

    This is the tagless protocol whose reachable set is exactly [X_async]
    (§3.4): it enables every pending event immediately. Any specification
    with [X_async ⊆ X_B] — equivalently, any forbidden predicate whose
    graph has a cycle of order 0 — is implemented by it. *)

val factory : Protocol.factory
