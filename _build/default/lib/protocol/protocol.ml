type intent = {
  id : int;
  dst : int;
  color : int option;
  payload : int;
  group : int option;
  flush : Message.flush_kind;
}

type action =
  | Send_user of Message.user
  | Send_control of { dst : int; ctl : Message.control }
  | Deliver of int

type instance = {
  on_invoke : now:int -> intent -> action list;
  on_packet : now:int -> from:int -> Message.packet -> action list;
  pending_depth : unit -> int;
}

type kind = Tagless | Tagged | General

let kind_to_string = function
  | Tagless -> "tagless"
  | Tagged -> "tagged"
  | General -> "general"

type factory = {
  proto_name : string;
  kind : kind;
  make : nprocs:int -> me:int -> instance;
}
