type intent = {
  id : int;
  dst : int;
  color : int option;
  payload : int;
  group : int option;
  flush : Message.flush_kind;
}

type action =
  | Send_user of Message.user
  | Send_control of { dst : int; ctl : Message.control }
  | Deliver of int
  | Send_framed of {
      dst : int;
      rel : Message.rel;
      packet : Message.packet;
      retransmit : bool;
    }
  | Set_timer of { delay : int; key : int }

type instance = {
  on_invoke : now:int -> intent -> action list;
  on_packet : now:int -> from:int -> Message.packet -> action list;
  on_timer : now:int -> key:int -> action list;
  pending_depth : unit -> int;
}

let no_timer ~now:_ ~key:_ = []

type kind = Tagless | Tagged | General

let kind_to_string = function
  | Tagless -> "tagless"
  | Tagged -> "tagged"
  | General -> "general"

type factory = {
  proto_name : string;
  kind : kind;
  make : nprocs:int -> me:int -> instance;
}
