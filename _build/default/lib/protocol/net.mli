(** Network fault model.

    The paper assumes a reliable asynchronous network; the simulator's
    substrate is deliberately weaker, and this module is its fault
    vocabulary. Four independent fault kinds compose:

    - {e random loss / duplication}: per-packet, Bernoulli with permille
      probabilities (the original {!Sim.faults} pair);
    - {e delay spikes}: with probability [spike.permille] a packet's
      latency is multiplied by [spike.factor] — a heavy-tailed burst that
      breaks any timing assumption without losing the packet;
    - {e link partitions}: a directed link is dead during a virtual-time
      window; every packet entering the link in the window is lost;
    - {e process crash-restart}: a process is silent during a window. It
      loses every packet that arrives while it is down (its in-flight
      receives), but keeps its protocol state; pending invokes and timers
      are deferred to the restart instant.

    All faults are driven by the simulator's seeded PRNG or by fixed
    windows, so faulty runs are exactly as deterministic as fault-free
    ones. {!Reliable} rebuilds the paper's reliable network on top of
    this model. *)

type partition = {
  from_proc : int;
  to_proc : int;  (** directed: only [from_proc → to_proc] packets die *)
  start_at : int;
  stop_at : int;  (** half-open window [start_at, stop_at) *)
}

type crash = {
  proc : int;
  start_at : int;
  stop_at : int;  (** half-open window; the process restarts at [stop_at] *)
}

type spike = {
  permille : int;  (** per-packet probability (‰) of a delay spike *)
  factor : int;  (** latency multiplier for spiked packets, ≥ 1 *)
}

type t = {
  drop_permille : int;  (** per-packet probability (‰) of silent loss *)
  duplicate_permille : int;  (** per-packet probability (‰) of duplication *)
  spike : spike;
  partitions : partition list;
  crashes : crash list;
}

val none : t

val make :
  ?drop_permille:int ->
  ?duplicate_permille:int ->
  ?spike:spike ->
  ?partitions:partition list ->
  ?crashes:crash list ->
  unit ->
  t
(** All fields default to the fault-free value. *)

val is_none : t -> bool

val partitioned : t -> from_proc:int -> to_proc:int -> at:int -> bool
(** Is the directed link dead at this instant? *)

val crashed_until : t -> proc:int -> at:int -> int option
(** [Some stop] when the process is down at [at], where [stop] is the
    restart instant of the latest crash window covering [at]. *)

val validate : nprocs:int -> t -> (unit, string) result
(** Probabilities in range ([drop + duplicate ≤ 1000]), factor ≥ 1,
    windows non-empty, process indices within [0, nprocs). *)

val parse : string -> (t, string) result
(** Parse the CLI fault syntax: a comma-separated list of
    [drop=N], [dup=N], [spike=NxF], [part=SRC>DST\@T1-T2] and
    [crash=P\@T1-T2] clauses ([part]/[crash] may repeat), e.g.
    ["drop=150,part=0>1\@100-400,crash=2\@200-500"]. Empty string means
    no faults. *)

val to_string : t -> string
(** Inverse of {!parse} (canonical clause order). *)

val pp : Format.formatter -> t -> unit
