(** k-weaker causal ordering (§6): "messages can be out of order by at most
    k messages".

    Two implementations:

    - {!conservative} [k] — plain RST causal ordering. Sound for every [k]
      because [X_co ⊆ X_{k-weaker}]: Theorem 1.2 says a tagged protocol
      exists iff [X_co] is contained in the specification, and the
      universal tagged protocol is the causal one. Delivers nothing out of
      order, so it forfeits the latency benefit the weaker spec allows.

    - {!window} [k] — the per-channel sliding-window protocol: a message
      with channel sequence number [n] is deliverable once every message
      with sequence number [≤ n - (k+1)] from the same channel has been
      delivered, so a message can overtake at most [k] predecessors. This
      implements the {e channel-restricted} k-weaker specification (the §6
      predicate with same-source/same-destination guards; with [k = 0] it
      degenerates to FIFO). The unrestricted §6 predicate would need
      chain-depth tagging across processes; the conservative variant covers
      it, and the bench harness uses [window] to show the latency/weakness
      trade-off (experiment B1/B4). *)

val conservative : int -> Protocol.factory

val window : int -> Protocol.factory
