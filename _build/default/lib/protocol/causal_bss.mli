(** Causal broadcast by the Birman–Schiper–Stephenson protocol [4].

    A vector-clock protocol for {e broadcast} workloads: every application
    send must be a {!Sim.Broadcast}. Each process counts broadcasts per
    originator; a broadcast by [i] is tagged with [i]'s vector (own entry =
    number of its earlier broadcasts); receiver [j] delivers a copy from
    [i] once it has delivered all of [i]'s earlier broadcasts and at least
    as many from everyone else as the tag records.

    Using it on a unicast workload deadlocks by design — a receiver waits
    for "broadcasts" it will never get — and the conformance harness
    reports the liveness failure; this is the paper's point that a
    protocol's reachable set is relative to its environment. *)

val factory : Protocol.factory
