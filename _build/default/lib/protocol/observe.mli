(** Bridge from simulator outcomes into the {!Mo_obs} registry.

    One registry per (protocol, workload, seed) run. {!record} writes the
    simulator-level accounting under [sim.*] and the per-message lifecycle
    aggregates under [span.*]; {!run} additionally wraps the factory in
    {!Wrap.instrument} so the protocol-layer [proto.*] metrics land in the
    same registry. Metric names and units are listed in DESIGN.md,
    "Observability". *)

val record : Mo_obs.Metrics.t -> Sim.outcome -> unit
(** Counters [sim.msgs_total], [sim.delivered_total], [sim.user_packets],
    [sim.control_packets], [sim.tag_bytes], [sim.control_bytes],
    [sim.retransmits], [sim.fault_drops]; gauges [sim.makespan],
    [sim.max_pending], [sim.live] (1 when every message was delivered);
    plus {!Mo_obs.Span.record} over the outcome's spans. *)

val run :
  ?config:Sim.config ->
  ?registry:Mo_obs.Metrics.t ->
  Protocol.factory ->
  Sim.op list ->
  (Mo_obs.Metrics.t * Sim.outcome, string) result
(** Execute the workload under an instrumented copy of the factory
    ([config] defaults to [Sim.default_config ~nprocs:4]) and return the
    filled registry next to the outcome. Pass [registry] to aggregate into
    an existing registry (e.g. one already holding a recovery layer's
    [net.*] metrics); a fresh one is created when omitted. *)

val report_row :
  Mo_obs.Metrics.t -> factory:Protocol.factory -> Mo_obs.Report.row
(** The registry labelled with the factory's name and class, ready for
    {!Mo_obs.Report.pp_comparison} / [to_json]. *)
