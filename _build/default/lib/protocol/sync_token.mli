(** Logically synchronous ordering via a serializing coordinator.

    The paper (Theorem 1.1, after [3, 18]) needs a {e general} protocol
    whose reachable set is exactly [X_sync]. This implementation serializes
    message transactions through process 0: a sender first requests a grant
    ([req]), sends the user message when granted, and the receiver
    acknowledges delivery to the coordinator ([ack]), which only then
    issues the next grant. At most one user message is ever in flight, so
    the messages are linearly ordered by grant number — the numbering [T]
    of the SYNC condition — and every message arrow can be drawn vertical.

    This uses three control messages per user message; the efficient
    protocols of [3, 18] reduce that constant but not the need for control
    messages, which Theorem 4.2 shows is inherent: no tagging-only protocol
    can implement [X_sync]. The grant number is also tagged on the user
    message (a general protocol may tag), which lets the conformance
    checker read back the claimed linearization. *)

val factory : Protocol.factory
