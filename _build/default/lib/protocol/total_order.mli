(** Total-order (atomic) broadcast by a fixed sequencer — the multicast
    extension of the paper's closing remark, as a {e general} protocol.

    Each application broadcast obtains a global ticket from the sequencer
    (process 0) with a [toreq]/[togrant] control exchange — two control
    messages per broadcast, independent of the group size — and every
    process delivers groups in ticket order, skipping tickets of its own
    broadcasts (it receives no copy of those). Ticket order extends
    causality (a request caused by a delivery is sequenced after that
    delivery's grant), so the protocol guarantees causal broadcast {e and}
    total order.

    Total order itself is not a forbidden predicate over happened-before
    (see {!Mo_order.Broadcast_props}); this protocol and the checkers in
    that module extend the framework beyond the paper's specification
    language while reusing its machinery. Use with broadcast workloads
    only (like {!Causal_bss}). *)

val factory : Protocol.factory
