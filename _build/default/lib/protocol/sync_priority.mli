(** Logically synchronous ordering by decentralized priority rendezvous —
    a second general protocol, closer in spirit to the distributed
    interaction-scheduling algorithms the paper cites ([3, 18], Bagrodia's
    binary interactions) than the global sequencer of {!Sync_token}.

    Each message is a three-step rendezvous between its two endpoints
    only: the sender asks its receiver ([req]), sends the user message
    when granted ([ok]), and the receiver acknowledges delivery ([ack]).
    A process answers a request immediately when it is idle; while it has
    a granted send in flight it defers all requests (a concurrent reverse
    message would complete a crown); while it is itself requesting, it
    grants only {e higher-priority} (lower id) requesters — its own send
    event has not happened yet, so no crown can close through it, and the
    static priority order breaks symmetric and circular request patterns
    that would otherwise deadlock or form longer crowns.

    Compared with the sequencer: the same three control messages per user
    message, but no global bottleneck — disjoint process pairs rendezvous
    concurrently, which shows up as lower latency in experiment B1.
    Conformance to [X_sync] is checked per-run by the test suite across
    seeds, workload shapes, and the exhaustive small-universe checker. *)

val factory : Protocol.factory
