open Mo_order
module E = Event.Sys

type t = { name : string; enabled : Sys_run.t -> int -> E.t list }

let enable_all =
  { name = "enable-all"; enabled = (fun h i -> Sys_run.Pending.controllable h i) }

let fifo =
  let enabled h i =
    List.filter
      (fun (e : E.t) ->
        match e.kind with
        | E.Send -> true
        | E.Deliver ->
            (* every earlier send on the same channel already delivered *)
            let src = Sys_run.msg_src h e.msg in
            let ok = ref true in
            for y = 0 to Sys_run.nmsgs h - 1 do
              if
                y <> e.msg
                && Sys_run.msg_src h y = src
                && Sys_run.msg_dst h y = i
                && Sys_run.lt h
                     { E.msg = y; kind = E.Send }
                     { E.msg = e.msg; kind = E.Send }
                && not (Sys_run.mem h { E.msg = y; kind = E.Deliver })
              then ok := false
            done;
            !ok
        | E.Invoke | E.Receive -> false)
      (Sys_run.Pending.controllable h i)
  in
  { name = "fifo"; enabled }

let causal =
  let enabled h i =
    List.filter
      (fun (e : E.t) ->
        match e.kind with
        | E.Send -> true
        | E.Deliver ->
            let ok = ref true in
            for y = 0 to Sys_run.nmsgs h - 1 do
              if
                y <> e.msg
                && Sys_run.msg_dst h y = i
                && Sys_run.mem h { E.msg = y; kind = E.Send }
                && Sys_run.lt h
                     { E.msg = y; kind = E.Send }
                     { E.msg = e.msg; kind = E.Send }
                && not (Sys_run.mem h { E.msg = y; kind = E.Deliver })
              then ok := false
            done;
            !ok
        | E.Invoke | E.Receive -> false)
      (Sys_run.Pending.controllable h i)
  in
  { name = "causal"; enabled }

let sync =
  let enabled h i =
    let in_flight =
      let found = ref false in
      for y = 0 to Sys_run.nmsgs h - 1 do
        if
          Sys_run.mem h { E.msg = y; kind = E.Send }
          && not (Sys_run.mem h { E.msg = y; kind = E.Deliver })
        then found := true
      done;
      !found
    in
    List.filter
      (fun (e : E.t) ->
        match e.kind with
        | E.Send -> not in_flight
        | E.Deliver -> true
        | E.Invoke | E.Receive -> false)
      (Sys_run.Pending.controllable h i)
  in
  { name = "sync"; enabled }

let run_key h =
  let buf = Buffer.create 64 in
  for i = 0 to Sys_run.nprocs h - 1 do
    Buffer.add_char buf '|';
    List.iter
      (fun e -> Buffer.add_string buf (string_of_int (E.encode e) ^ ","))
      (Sys_run.sequence h i)
  done;
  Buffer.contents buf

let proc_of_event msgs (e : E.t) =
  let src, dst = msgs.(e.msg) in
  match e.kind with E.Invoke | E.Send -> src | E.Receive | E.Deliver -> dst

let successors ~msgs p h =
  let nprocs = Sys_run.nprocs h in
  let next = ref [] in
  for i = 0 to nprocs - 1 do
    let events =
      Sys_run.Pending.invokes h i
      @ Sys_run.Pending.receives h i
      @ List.filter
          (fun (e : E.t) ->
            match e.kind with
            | E.Send | E.Deliver -> true
            | E.Invoke | E.Receive -> false)
          (p.enabled h i)
    in
    List.iter
      (fun e ->
        assert (proc_of_event msgs e = i);
        match Sys_run.extend h i e with
        | Ok h' -> next := h' :: !next
        | Error msg ->
            invalid_arg ("Inhibit.successors: bad extension: " ^ msg))
      events
  done;
  !next

let reachable ~nprocs ~msgs p =
  let empty =
    match
      Sys_run.of_sequences ~nprocs ~msgs (Array.make nprocs [])
    with
    | Ok h -> h
    | Error e -> invalid_arg ("Inhibit.reachable: " ^ e)
  in
  let seen = Hashtbl.create 1024 in
  let acc = ref [] in
  let queue = Queue.create () in
  Hashtbl.replace seen (run_key empty) ();
  Queue.add empty queue;
  while not (Queue.is_empty queue) do
    let h = Queue.pop queue in
    acc := h :: !acc;
    List.iter
      (fun h' ->
        let k = run_key h' in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          Queue.add h' queue
        end)
      (successors ~msgs p h)
  done;
  List.rev !acc

let complete_runs ~nprocs ~msgs p =
  (* many system interleavings project to one user view: X̄_P is a set, so
     deduplicate by the user-view process sequences *)
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun h ->
      if Sys_run.is_complete h then
        match Sys_run.users_view h with
        | Ok r ->
            let key =
              String.concat "|"
                (List.init (Run.nprocs r) (fun i ->
                     String.concat ","
                       (List.map
                          (fun e -> string_of_int (Event.encode e))
                          (Run.sequence r i))))
            in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.replace seen key ();
              Some r
            end
        | Error _ -> None
      else None)
    (reachable ~nprocs ~msgs p)

let live ~nprocs ~msgs p =
  List.for_all
    (fun h ->
      let pending_exists = ref false
      and enabled_exists = ref false in
      for i = 0 to nprocs - 1 do
        if
          Sys_run.Pending.receives h i <> []
          || Sys_run.Pending.controllable h i <> []
        then pending_exists := true;
        if Sys_run.Pending.receives h i <> [] || p.enabled h i <> [] then
          enabled_exists := true
      done;
      (not !pending_exists) || !enabled_exists)
    (reachable ~nprocs ~msgs p)

let same_events a b =
  List.length a = List.length b
  && List.for_all (fun e -> List.exists (E.equal e) b) a

let respects_condition ~nprocs ~msgs p ~same_view =
  let runs = Array.of_list (reachable ~nprocs ~msgs p) in
  let n = Array.length runs in
  let ok = ref true in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for i = 0 to nprocs - 1 do
        if !ok && same_view runs.(a) runs.(b) i then
          if
            not
              (same_events (p.enabled runs.(a) i) (p.enabled runs.(b) i))
          then ok := false
      done
    done
  done;
  !ok

let rec list_equal eq a b =
  match (a, b) with
  | [], [] -> true
  | x :: a', y :: b' -> eq x y && list_equal eq a' b'
  | _ -> false

let respects_tagless_condition ~nprocs ~msgs p =
  respects_condition ~nprocs ~msgs p ~same_view:(fun h g i ->
      list_equal E.equal (Sys_run.sequence h i) (Sys_run.sequence g i))

let respects_tagged_condition ~nprocs ~msgs p =
  respects_condition ~nprocs ~msgs p ~same_view:(fun h g i ->
      let ch = Sys_run.causal_past h i and cg = Sys_run.causal_past g i in
      let all_procs_equal = ref true in
      for j = 0 to nprocs - 1 do
        if
          not
            (list_equal E.equal (Sys_run.sequence ch j)
               (Sys_run.sequence cg j))
        then all_procs_equal := false
      done;
      !all_procs_equal)
