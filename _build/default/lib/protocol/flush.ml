type chan_send = {
  mutable next_seq : int;
  mutable last_barrier : int; (* seqno of latest Backward/Two_way; -1 none *)
}

type buffered = { id : int; seq : int; barrier : int; kind : Message.flush_kind }

type chan_recv = {
  mutable delivered : bool array; (* index: seqno *)
  mutable delivered_below : int; (* all seqnos < this are delivered *)
  mutable buffer : buffered list;
}

let ensure_capacity cr seq =
  if seq >= Array.length cr.delivered then begin
    let bigger = Array.make (max 16 (2 * (seq + 1))) false in
    Array.blit cr.delivered 0 bigger 0 (Array.length cr.delivered);
    cr.delivered <- bigger
  end

let make ~nprocs ~me =
  let send_side = Array.init nprocs (fun _ -> { next_seq = 0; last_barrier = -1 }) in
  let recv_side =
    Array.init nprocs (fun _ ->
        { delivered = Array.make 16 false; delivered_below = 0; buffer = [] })
  in
  let barrier_done cr b = b < 0 || (b < Array.length cr.delivered && cr.delivered.(b)) in
  let deliverable cr (m : buffered) =
    match m.kind with
    | Message.Ordinary | Message.Backward -> barrier_done cr m.barrier
    | Message.Forward | Message.Two_way -> cr.delivered_below >= m.seq
  in
  let mark cr seq =
    ensure_capacity cr seq;
    cr.delivered.(seq) <- true;
    while
      cr.delivered_below < Array.length cr.delivered
      && cr.delivered.(cr.delivered_below)
    do
      cr.delivered_below <- cr.delivered_below + 1
    done
  in
  let rec drain cr acc =
    match List.partition (deliverable cr) cr.buffer with
    | [], _ -> List.rev acc
    | ready, rest ->
        cr.buffer <- rest;
        let acts =
          List.map
            (fun (m : buffered) ->
              mark cr m.seq;
              Protocol.Deliver m.id)
            ready
        in
        drain cr (List.rev_append acts acc)
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        let cs = send_side.(intent.dst) in
        let seq = cs.next_seq in
        cs.next_seq <- seq + 1;
        let tag =
          Message.Flush { seqno = seq; barrier = cs.last_barrier; kind = intent.flush }
        in
        (match intent.flush with
        | Message.Backward | Message.Two_way -> cs.last_barrier <- seq
        | Message.Ordinary | Message.Forward -> ());
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag;
            };
        ]);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User { id; tag = Message.Flush { seqno; barrier; kind }; _ }
          ->
            let cr = recv_side.(from) in
            ensure_capacity cr seqno;
            cr.buffer <- cr.buffer @ [ { id; seq = seqno; barrier; kind } ];
            drain cr []
        | Message.User _ -> invalid_arg "Flush: user message without flush tag"
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth =
      (fun () ->
        Array.fold_left
          (fun acc cr -> acc + List.length cr.buffer)
          0 recv_side);
  }

let factory = { Protocol.proto_name = "flush"; kind = Protocol.Tagged; make }

(* The selective variants reuse the flush machinery, deriving each
   message's flush kind from its color instead of from the workload: the
   ordering cost is paid only around colored messages. *)
let with_kind_from_color ~name ~kind_of_color =
  let make ~nprocs ~me =
    let inner = make ~nprocs ~me in
    {
      Protocol.on_invoke =
        (fun ~now (intent : Protocol.intent) ->
          inner.Protocol.on_invoke ~now
            { intent with Protocol.flush = kind_of_color intent.color });
      on_packet = inner.Protocol.on_packet;
      on_timer = inner.Protocol.on_timer;
      pending_depth = inner.Protocol.pending_depth;
    }
  in
  { Protocol.proto_name = name; kind = Protocol.Tagged; make }

let selective_forward ~color =
  with_kind_from_color
    ~name:(Printf.sprintf "selective-forward-%d" color)
    ~kind_of_color:(fun c ->
      if c = Some color then Message.Forward else Message.Ordinary)

let selective_backward ~color =
  with_kind_from_color
    ~name:(Printf.sprintf "selective-backward-%d" color)
    ~kind_of_color:(fun c ->
      if c = Some color then Message.Backward else Message.Ordinary)
