type state = {
  next_seq : int array; (* per destination: next seqno to assign *)
  expected : int array; (* per source: next seqno to deliver *)
  buffer : (int * int, int) Hashtbl.t; (* (src, seqno) -> msg id *)
}

let make ~nprocs ~me =
  let st =
    {
      next_seq = Array.make nprocs 0;
      expected = Array.make nprocs 0;
      buffer = Hashtbl.create 32;
    }
  in
  let deliverable_from src =
    (* drain the buffered prefix of this channel *)
    let acc = ref [] in
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt st.buffer (src, st.expected.(src)) with
      | Some id ->
          Hashtbl.remove st.buffer (src, st.expected.(src));
          st.expected.(src) <- st.expected.(src) + 1;
          acc := Protocol.Deliver id :: !acc
      | None -> continue := false
    done;
    List.rev !acc
  in
  {
    Protocol.on_invoke =
      (fun ~now:_ (intent : Protocol.intent) ->
        let seq = st.next_seq.(intent.dst) in
        st.next_seq.(intent.dst) <- seq + 1;
        [
          Protocol.Send_user
            {
              Message.id = intent.id;
              src = me;
              dst = intent.dst;
              color = intent.color;
              payload = intent.payload;
              tag = Message.Seqno seq;
            };
        ]);
    on_packet =
      (fun ~now:_ ~from packet ->
        match packet with
        | Message.User { id; tag = Message.Seqno seq; _ } ->
            Hashtbl.replace st.buffer (from, seq) id;
            deliverable_from from
        | Message.User _ -> invalid_arg "Fifo: user message without seqno"
        | Message.Control _ | Message.Framed _ -> []);
    on_timer = Protocol.no_timer;
    pending_depth = (fun () -> Hashtbl.length st.buffer);
  }

let factory = { Protocol.proto_name = "fifo"; kind = Protocol.Tagged; make }
