(** Conformance harness: run a protocol on a workload and check it against a
    specification (§3.3's safety and liveness).

    Safety: the recorded user-view run must satisfy the spec (no forbidden
    pattern matches). Liveness: every requested message was sent and
    delivered. Traffic consistency: the protocol's declared class matches
    what it put on the wire (a tagless protocol must not tag or emit
    control messages, a tagged one must not emit control messages). *)

type report = {
  outcome : Sim.outcome;
  live : bool;  (** all requested messages delivered *)
  spec_ok : bool option;
      (** [Some true/false] when a spec was supplied and the run is
          complete; [None] otherwise *)
  violation : (Mo_core.Forbidden.t * int array) option;
      (** the forbidden pattern found, with its satisfying assignment *)
  run_class : Mo_order.Limits.cls option;
      (** which limit set the recorded run falls in *)
  traffic_consistent : bool;
}

val check :
  ?spec:Mo_core.Spec.t ->
  Sim.config ->
  Protocol.factory ->
  Sim.op list ->
  (report, string) result

val check_exn :
  ?spec:Mo_core.Spec.t ->
  Sim.config ->
  Protocol.factory ->
  Sim.op list ->
  report

val pp_report : Format.formatter -> report -> unit
