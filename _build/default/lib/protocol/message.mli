(** Wire messages of the simulated system.

    User messages carry the protocol's tag (the "information tagged to user
    messages" that distinguishes tagged from tagless protocols, §3.2);
    control messages are what distinguishes general protocols from tagged
    ones. The conformance harness accounts for both. *)

type flush_kind = Ordinary | Forward | Backward | Two_way
(** The four send primitives of flush channels (F-channels [1]). *)

type tag =
  | No_tag
  | Seqno of int  (** FIFO: per-channel sequence number *)
  | Flush of { seqno : int; barrier : int; kind : flush_kind }
      (** flush channels: channel seqno plus the seqno of the latest
          preceding backward/two-way barrier (-1 if none) *)
  | Vector of Mo_order.Vclock.t  (** BSS causal broadcast *)
  | Matrix of Mo_order.Mclock.t  (** RST causal ordering *)
  | Ses of {
      tm : Mo_order.Vclock.t;  (** the message's vector timestamp *)
      dep : (int * Mo_order.Vclock.t) list;
          (** per destination, the timestamp of the latest message sent to
              it in the sender's causal past (SES causal ordering [21]) *)
    }
  | Bounded_matrix of { m : Mo_order.Mclock.t; slack : int }
      (** k-weaker causal: RST matrix plus the allowed overtaking bound *)
  | Ticket of int  (** token-serialized logically synchronous ordering *)

val tag_bytes : tag -> int
(** Size accounting for the overhead benches: 4 bytes per integer
    component, 0 for [No_tag]. *)

val tag_name : tag -> string

type user = {
  id : int;  (** message index in the run being recorded *)
  src : int;
  dst : int;
  color : int option;
  payload : int;  (** application data (e.g. a transfer amount); 0 if unused *)
  tag : tag;
}

type control = { kind : string; data : int array }
(** Protocol-specific control traffic; [kind] is a short label
    (["req"], ["grant"], ["ack"], …). *)

val control_bytes : control -> int

type rel = { seq : int; cum_ack : int }
(** The reliability envelope of {!Reliable}: [seq] is the per-directed-
    channel sequence number of this frame ([-1] for unsequenced frames,
    i.e. standalone acks, which are never retransmitted or deduplicated);
    [cum_ack] piggybacks the highest contiguously-received sequence number
    of the reverse channel ([-1] when nothing was received yet). *)

val rel_bytes : int
(** Wire overhead of one envelope: two integers. *)

type packet =
  | User of user
  | Control of control
  | Framed of { rel : rel; inner : packet }
      (** a user or control packet wrapped by the recovery layer; [inner]
          is never itself [Framed] (the simulator rejects nesting) *)

val is_control : packet -> bool
(** A framed packet counts as control traffic unless it carries a user
    message. *)

val pp_packet : Format.formatter -> packet -> unit
