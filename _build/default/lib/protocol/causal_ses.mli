(** Causal ordering by the Schiper–Eggli–Sandoz protocol [21] — the
    paper's other cited tagged implementation.

    Where RST ships an [n × n] matrix on every message, SES ships the
    message's vector timestamp plus, for each {e destination} with
    causally earlier traffic, one [(destination, timestamp)] pair — the
    latest message sent to that destination in the sender's causal past.
    Receiver [j] looks only at the pair addressed to [j]: the message is
    deliverable once that earlier message's timestamp is dominated by
    [j]'s delivered-knowledge vector. On sparse communication patterns the
    tag is much smaller than the matrix; in the worst case (everyone
    talks to everyone) it degenerates to the same O(n²).

    Correctness is enforced the same way as the other protocols:
    conformance across seeds and exhaustive schedule exploration
    ({!Explore}) on small workloads. *)

val factory : Protocol.factory
