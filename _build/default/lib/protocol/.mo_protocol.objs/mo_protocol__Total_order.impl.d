lib/protocol/total_order.ml: Array Hashtbl List Message Protocol
