lib/protocol/protocol.ml: Message
