lib/protocol/reliable.mli: Mo_obs Protocol
