lib/protocol/causal_rst.mli: Protocol
