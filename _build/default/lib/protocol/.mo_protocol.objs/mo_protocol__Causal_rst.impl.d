lib/protocol/causal_rst.ml: Array List Mclock Message Mo_order Protocol
