lib/protocol/causal_ses.ml: Hashtbl List Message Mo_order Protocol Vclock
