lib/protocol/inhibit.ml: Array Buffer Event Hashtbl List Mo_order Queue Run String Sys_run
