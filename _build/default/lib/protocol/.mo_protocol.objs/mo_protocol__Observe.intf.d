lib/protocol/observe.mli: Mo_obs Protocol Sim
