lib/protocol/kweaker.ml: Array Causal_rst List Message Printf Protocol
