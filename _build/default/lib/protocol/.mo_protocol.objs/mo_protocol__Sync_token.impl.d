lib/protocol/sync_token.ml: Array Message Protocol
