lib/protocol/sync_token.ml: Array List Message Protocol
