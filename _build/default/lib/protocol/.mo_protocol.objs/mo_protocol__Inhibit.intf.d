lib/protocol/inhibit.mli: Mo_order
