lib/protocol/fifo.ml: Array Hashtbl List Message Protocol
