lib/protocol/conformance.mli: Format Mo_core Mo_order Protocol Sim
