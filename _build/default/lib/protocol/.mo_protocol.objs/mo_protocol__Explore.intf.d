lib/protocol/explore.mli: Mo_order Protocol Sim
