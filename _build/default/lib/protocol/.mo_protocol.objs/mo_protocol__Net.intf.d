lib/protocol/net.mli: Format
