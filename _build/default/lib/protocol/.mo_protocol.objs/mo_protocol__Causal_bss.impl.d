lib/protocol/causal_bss.ml: Array List Message Mo_order Protocol Vclock
