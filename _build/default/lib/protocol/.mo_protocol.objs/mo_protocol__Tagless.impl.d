lib/protocol/tagless.ml: Message Protocol
