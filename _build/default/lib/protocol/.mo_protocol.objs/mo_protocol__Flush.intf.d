lib/protocol/flush.mli: Protocol
