lib/protocol/sync_token.mli: Protocol
