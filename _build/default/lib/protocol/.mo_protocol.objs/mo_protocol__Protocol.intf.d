lib/protocol/protocol.mli: Message
