lib/protocol/explore.ml: Array Event Fun Hashtbl List Message Mo_order Protocol Run Sim String
