lib/protocol/tagless.mli: Protocol
