lib/protocol/wrap.ml: Array Hashtbl List Message Metrics Mo_obs Protocol
