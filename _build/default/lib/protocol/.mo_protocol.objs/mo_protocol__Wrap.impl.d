lib/protocol/wrap.ml: Array Hashtbl List Message Protocol
