lib/protocol/wrap.ml: Array List Message Metrics Mo_obs Protocol Reliable
