lib/protocol/total_order.mli: Protocol
