lib/protocol/sync_priority.ml: List Message Protocol
