lib/protocol/sim.ml: Array Event List Message Mo_obs Mo_order Net Option Printf Protocol Random Run Sys_run
