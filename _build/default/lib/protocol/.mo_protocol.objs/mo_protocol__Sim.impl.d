lib/protocol/sim.ml: Array Event List Message Mo_obs Mo_order Option Printf Protocol Random Run Sys_run
