lib/protocol/flush.ml: Array List Message Printf Protocol
