lib/protocol/synth.ml: Array Causal_rst Fifo Flush Fun Kweaker List Mo_core Mo_order Printf Protocol Sync_token Tagless
