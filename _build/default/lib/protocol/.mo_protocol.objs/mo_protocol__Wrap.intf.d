lib/protocol/wrap.mli: Mo_obs Protocol Reliable
