lib/protocol/wrap.mli: Protocol
