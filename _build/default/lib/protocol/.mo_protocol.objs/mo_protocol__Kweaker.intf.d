lib/protocol/kweaker.mli: Protocol
