lib/protocol/observe.ml: Array Metrics Mo_obs Protocol Report Sim Span Wrap
