lib/protocol/synth.mli: Mo_core Protocol
