lib/protocol/conformance.ml: Array Format Limits Mo_core Mo_order Option Protocol Run Sim
