lib/protocol/causal_ses.mli: Protocol
