lib/protocol/sim.mli: Message Mo_order Protocol
