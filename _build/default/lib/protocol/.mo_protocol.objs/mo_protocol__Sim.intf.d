lib/protocol/sim.mli: Message Mo_obs Mo_order Net Protocol
