lib/protocol/net.ml: Format List Printf Result String
