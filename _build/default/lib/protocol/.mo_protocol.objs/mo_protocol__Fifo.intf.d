lib/protocol/fifo.mli: Protocol
