lib/protocol/message.mli: Format Mo_order
