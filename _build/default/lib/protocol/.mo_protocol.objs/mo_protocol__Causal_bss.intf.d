lib/protocol/causal_bss.mli: Protocol
