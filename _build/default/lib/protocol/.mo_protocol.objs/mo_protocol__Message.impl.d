lib/protocol/message.ml: Array Format List Mo_order String
