lib/protocol/sync_priority.mli: Protocol
