lib/protocol/reliable.ml: Array Hashtbl List Message Metrics Mo_obs Protocol
