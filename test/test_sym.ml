(* The symmetry-quotiented enumeration (DESIGN.md §3j), verified
   differentially against the concrete kernel.

   - configs_quotient / configs_sym: multiplicity-expanded config and
     run counts equal the unquotiented enumeration's on every standard
     size, and every representative is a member of the orbit it names;
   - count_runs_sym = count_runs on every configuration;
   - orbit-expanded per-predicate violation counts and limit-set counts
     from fold_abstracts_sym (with and without decided-subtree pruning)
     equal the concrete enumeration's, for every Catalog predicate,
     exhaustively over the standard tier;
   - Modelcheck verify / count / placement produce byte-identical
     verdicts with --sym on and off, at jobs 1/2/4/7;
   - MO_SYM_DEEP=1 (nightly) extends the verify differential to the
     940,304-run deep tier and pins the 77,830,564-run vast tier's
     orbit-expanded cardinalities. *)

open Mo_core
open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let deep = Sys.getenv_opt "MO_SYM_DEEP" <> None

let sizes_all = (4, 2) :: Modelcheck.standard_sizes

(* ---- config quotients --------------------------------------------- *)

let test_configs_quotient () =
  List.iter
    (fun (nprocs, nmsgs) ->
      let label fmt = Printf.sprintf fmt nprocs nmsgs in
      let cfgs = Enumerate.configs ~nprocs ~nmsgs () in
      let runs_of msgs = Enumerate.count_runs ~nprocs ~msgs in
      let total_runs = List.fold_left (fun a c -> a + runs_of c) 0 cfgs in
      let expand q = List.fold_left (fun a (_, m) -> a + m) 0 q in
      let expand_runs q =
        List.fold_left (fun a (c, m) -> a + (m * runs_of c)) 0 q
      in
      let q = Enumerate.configs_quotient ~nprocs ~nmsgs () in
      check_int
        (label "(%d,%d) quotient multiplicities expand to the config count")
        (List.length cfgs) (expand q);
      check_int
        (label "(%d,%d) quotient orbit-expanded run count")
        total_runs (expand_runs q);
      List.iter
        (fun (rep, _) ->
          check_bool (label "(%d,%d) quotient rep is a real config") true
            (List.mem rep cfgs))
        q;
      let s = Enumerate.configs_sym ~nprocs ~nmsgs () in
      check_int
        (label "(%d,%d) sym multiplicities expand to the config count")
        (List.length cfgs) (expand s);
      check_int
        (label "(%d,%d) sym orbit-expanded run count")
        total_runs (expand_runs s);
      List.iter
        (fun (rep, _) ->
          check_bool (label "(%d,%d) sym rep is a real config") true
            (List.mem rep cfgs))
        s;
      check_bool
        (label "(%d,%d) sym quotient is at least as coarse")
        true
        (List.length s <= List.length q))
    sizes_all

let test_count_runs_sym () =
  List.iter
    (fun (nprocs, nmsgs) ->
      List.iter
        (fun msgs ->
          check_int "count_runs_sym equals count_runs"
            (Enumerate.count_runs ~nprocs ~msgs)
            (Enumerate.count_runs_sym ~nprocs ~msgs))
        (Enumerate.configs ~nprocs ~nmsgs ()))
    sizes_all

(* ---- orbit-expanded verdict counts, every catalog predicate -------- *)

(* violations (holds_c) and limit members counted three ways: concrete,
   sym, and sym with the decided-subtree prune driven by the predicate
   itself — all must agree exactly *)
let test_verdict_counts () =
  let plans =
    List.map
      (fun (e : Catalog.entry) -> (e.Catalog.name, Eval.compile e.Catalog.pred))
      Catalog.all
  in
  List.iter
    (fun (nprocs, nmsgs) ->
      let concrete =
        List.fold_left
          (fun acc msgs ->
            Enumerate.fold_abstracts ~nprocs ~msgs ~init:acc
              ~f:(fun (viols, causal) a ->
                ( List.map2
                    (fun v (_, plan) ->
                      if Eval.holds_c plan a then v + 1 else v)
                    viols plans,
                  (causal + if Limits.is_causal a then 1 else 0) )))
          (List.map (fun _ -> 0) plans, 0)
          (Enumerate.configs ~nprocs ~nmsgs ())
      in
      let sym_arm ~prune () =
        List.fold_left
          (fun acc (msgs, cmult) ->
            let mult = cmult * Enumerate.sym_mult ~msgs in
            let weigh (viols, causal) w a =
              ( List.map2
                  (fun v (_, plan) ->
                    if Eval.holds_c plan a then v + w else v)
                  viols plans,
                (causal + if Limits.is_causal a then w else 0) )
            in
            if prune then
              (* prune on full decision: every plan's pattern matched and
                 causality broken — then each pruned run adds mult to
                 every violation tally and nothing to the causal one *)
              let decided a =
                (not (Limits.is_causal a))
                && List.for_all (fun (_, plan) -> Eval.holds_c plan a) plans
              in
              let on_pruned (viols, causal) ~runs _a =
                (List.map (fun v -> v + (mult * runs)) viols, causal)
              in
              Enumerate.fold_abstracts_sym ~nprocs ~msgs
                ~prune:(decided, on_pruned) ~init:acc
                ~f:(fun acc a -> weigh acc mult a)
                ()
            else
              Enumerate.fold_abstracts_sym ~nprocs ~msgs ~init:acc
                ~f:(fun acc a -> weigh acc mult a)
                ())
          (List.map (fun _ -> 0) plans, 0)
          (Enumerate.configs_sym ~nprocs ~nmsgs ())
      in
      let check_arm name (viols, causal) =
        let cviols, ccausal = concrete in
        check_int
          (Printf.sprintf "(%d,%d) %s causal count" nprocs nmsgs name)
          ccausal causal;
        List.iter2
          (fun (pname, _) (c, s) ->
            check_int
              (Printf.sprintf "(%d,%d) %s violations of %s" nprocs nmsgs name
                 pname)
              c s)
          plans
          (List.combine cviols viols)
      in
      check_arm "sym" (sym_arm ~prune:false ());
      check_arm "sym+prune" (sym_arm ~prune:true ()))
    Modelcheck.standard_sizes

(* ---- Modelcheck differentials ------------------------------------- *)

let str_verdict v = Format.asprintf "%a" Modelcheck.pp_verdict v

let str_placement p = Format.asprintf "%a" Modelcheck.pp_placement p

let test_modelcheck_equal () =
  let pool = Mo_par.Pool.create ~jobs:4 () in
  let v = Modelcheck.verify ~pool ~sizes:Modelcheck.standard_sizes () in
  let vs =
    Modelcheck.verify ~pool ~sym:true ~sizes:Modelcheck.standard_sizes ()
  in
  check_string "verify standard: byte-identical" (str_verdict v)
    (str_verdict vs);
  check_bool "verify standard: record-equal" true (v = vs);
  let c = Modelcheck.count ~pool ~sizes:Modelcheck.universe_sizes () in
  let cs =
    Modelcheck.count ~pool ~sym:true ~sizes:Modelcheck.universe_sizes ()
  in
  check_bool "count universe: equal" true (c = cs);
  check_int "count universe: runs pinned" 125_768 cs.Modelcheck.runs;
  check_int "count universe: causal pinned" 63_364 cs.Modelcheck.causal;
  check_int "count universe: sync pinned" 41_432 cs.Modelcheck.sync;
  List.iter
    (fun (e : Catalog.entry) ->
      let p =
        Modelcheck.placement ~pool ~sizes:Modelcheck.standard_sizes
          e.Catalog.pred
      in
      let ps =
        Modelcheck.placement ~pool ~sym:true ~sizes:Modelcheck.standard_sizes
          e.Catalog.pred
      in
      check_string
        ("placement standard " ^ e.Catalog.name ^ ": byte-identical")
        (str_placement p) (str_placement ps))
    [ Catalog.fifo; Catalog.causal_b2; Catalog.sync_crown 2 ];
  (* one universe-tier placement with a wider k-synchronous sweep *)
  let p =
    Modelcheck.placement ~pool ~kmax:5 ~sizes:Modelcheck.universe_sizes
      Catalog.fifo.Catalog.pred
  in
  let ps =
    Modelcheck.placement ~pool ~kmax:5 ~sym:true
      ~sizes:Modelcheck.universe_sizes Catalog.fifo.Catalog.pred
  in
  check_string "placement universe fifo kmax 5: byte-identical"
    (str_placement p) (str_placement ps)

let test_jobs_identity () =
  let at jobs =
    let pool = Mo_par.Pool.create ~jobs () in
    ( str_verdict
        (Modelcheck.verify ~pool ~sym:true ~sizes:Modelcheck.universe_sizes ()),
      str_placement
        (Modelcheck.placement ~pool ~sym:true
           ~sizes:Modelcheck.universe_sizes Catalog.causal_b2.Catalog.pred) )
  in
  let v1, p1 = at 1 in
  List.iter
    (fun jobs ->
      let v, p = at jobs in
      check_string
        (Printf.sprintf "verify sym: jobs %d byte-identical to jobs 1" jobs)
        v1 v;
      check_string
        (Printf.sprintf "placement sym: jobs %d byte-identical to jobs 1" jobs)
        p1 p)
    [ 2; 4; 7 ]

(* ---- the nightly deep arm ----------------------------------------- *)

let test_deep () =
  if not deep then ()
  else begin
    let pool = Mo_par.Pool.create () in
    let v = Modelcheck.verify ~pool ~sizes:Modelcheck.deep_sizes () in
    let vs =
      Modelcheck.verify ~pool ~sym:true ~sizes:Modelcheck.deep_sizes ()
    in
    check_string "verify deep: byte-identical" (str_verdict v)
      (str_verdict vs);
    check_int "deep runs pinned" 940_304 vs.Modelcheck.counts.Modelcheck.runs;
    (* the vast tier is only ever walked quotiented; its orbit-expanded
       cardinalities are pinned here and in bench B18 *)
    let c = Modelcheck.count ~pool ~sym:true ~sizes:Modelcheck.vast_sizes () in
    check_int "vast runs pinned" 77_830_564 c.Modelcheck.runs;
    check_int "vast causal pinned" 37_542_704 c.Modelcheck.causal;
    check_int "vast sync pinned" 23_179_456 c.Modelcheck.sync;
    let vv =
      Modelcheck.verify ~pool ~sym:true ~sizes:Modelcheck.vast_sizes ()
    in
    check_bool "vast verify: all lemma identities hold" true
      (Modelcheck.ok vv);
    check_bool "vast verify and count agree" true
      (vv.Modelcheck.counts = c)
  end

let () =
  Alcotest.run "sym"
    [
      ( "quotients",
        [
          Alcotest.test_case "configs_quotient / configs_sym" `Quick
            test_configs_quotient;
          Alcotest.test_case "count_runs_sym" `Quick test_count_runs_sym;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "orbit-expanded counts, every predicate" `Quick
            test_verdict_counts;
        ] );
      ( "modelcheck",
        [
          Alcotest.test_case "sym on/off byte-identity" `Quick
            test_modelcheck_equal;
          Alcotest.test_case "jobs 1/2/4/7 byte-identity" `Quick
            test_jobs_identity;
          Alcotest.test_case "deep + vast tiers (MO_SYM_DEEP)" `Slow test_deep;
        ] );
    ]
