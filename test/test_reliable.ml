(* The reliable-channel substrate, conformance-verified under faults:
   every protocol wrapped in [Wrap.reliable] must stay live AND keep its
   ordering guarantee across a grid of fault configurations — the
   executable form of "the paper's reliable-network assumption is a
   derived property, not an axiom". The same grid without the wrapper
   demonstrably loses liveness, which keeps the positive results honest. *)

open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ]
let fifo_spec = Spec.make ~name:"fifo" [ Catalog.fifo.Catalog.pred ]

(* ------------------------------------------------------------------ *)
(* Window: the bounded dedup memory                                    *)

let test_window_bound () =
  let w = Reliable.Window.create ~size:8 in
  check_int "capacity is the requested size" 8 (Reliable.Window.capacity w);
  check_bool "fresh id unseen" false (Reliable.Window.mem w 0);
  check_bool "first mark is fresh" true (Reliable.Window.mark w 0);
  check_bool "second mark is a duplicate" false (Reliable.Window.mark w 0);
  (* ids well past the window age out the old ones... *)
  for i = 1 to 100 do
    check_bool "ascending ids all fresh" true (Reliable.Window.mark w i)
  done;
  (* ...and anything below high - size is assumed already seen *)
  check_bool "aged-out id counts as seen" true (Reliable.Window.mem w 3);
  check_bool "aged-out mark rejected" false (Reliable.Window.mark w 3);
  check_int "capacity never grows" 8 (Reliable.Window.capacity w);
  (* within the window, membership stays exact: jump ahead leaving gaps *)
  let w2 = Reliable.Window.create ~size:8 in
  check_bool "gap jump" true (Reliable.Window.mark w2 100);
  check_bool "unmarked id inside the window is unseen" false
    (Reliable.Window.mem w2 97);
  check_bool "marked id inside the window is seen" true
    (Reliable.Window.mem w2 100);
  Alcotest.check_raises "size must be positive"
    (Invalid_argument "Reliable.Window.create: size must be positive")
    (fun () -> ignore (Reliable.Window.create ~size:0))

let test_dedup_is_bounded () =
  (* the dedup combinator must stay correct with a window far smaller
     than the run: duplicates arrive close to the original, so a small
     exact window suffices *)
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:60 ~seed:6).Gen.ops in
  List.iter
    (fun seed ->
      let cfg =
        {
          (Sim.default_config ~nprocs:3) with
          Sim.seed;
          faults = Net.make ~duplicate_permille:250 ();
        }
      in
      match Sim.execute cfg (Wrap.dedup ~window:16 Tagless.factory) ops with
      | Error e -> Alcotest.fail e
      | Ok o ->
          check_bool "live under duplication with a 16-slot window" true
            o.Sim.all_delivered)
    (List.init 8 Fun.id)

(* ------------------------------------------------------------------ *)
(* Net: parsing and validation                                         *)

let test_net_parse () =
  (match Net.parse "drop=150,dup=50,spike=20x8,part=0>1@100-400,crash=2@200-500"
   with
  | Error e -> Alcotest.fail e
  | Ok f ->
      check_int "drop" 150 f.Net.drop_permille;
      check_int "dup" 50 f.Net.duplicate_permille;
      check_int "spike permille" 20 f.Net.spike.Net.permille;
      check_int "spike factor" 8 f.Net.spike.Net.factor;
      (match f.Net.partitions with
      | [ p ] ->
          check_int "part src" 0 p.Net.from_proc;
          check_int "part dst" 1 p.Net.to_proc;
          check_int "part start" 100 p.Net.start_at;
          check_int "part stop" 400 p.Net.stop_at
      | _ -> Alcotest.fail "expected one partition");
      match f.Net.crashes with
      | [ c ] ->
          check_int "crash proc" 2 c.Net.proc;
          check_int "crash start" 200 c.Net.start_at;
          check_int "crash stop" 500 c.Net.stop_at
      | _ -> Alcotest.fail "expected one crash");
  (match Net.parse "" with
  | Ok f -> check_bool "empty spec means no faults" true (Net.is_none f)
  | Error e -> Alcotest.fail e);
  (match Net.parse "part=0>1@10-20,part=1>0@30-40" with
  | Ok f -> check_int "repeatable clauses" 2 (List.length f.Net.partitions)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Net.parse bad with
      | Ok _ -> Alcotest.fail ("parse should reject: " ^ bad)
      | Error _ -> ())
    [ "drop"; "drop=x"; "spike=20"; "part=0-1@2-3"; "crash=1@9"; "nope=3" ];
  (* to_string round-trips through parse *)
  let f =
    Net.make ~drop_permille:10 ~spike:{ Net.permille = 5; factor = 3 }
      ~crashes:[ { Net.proc = 1; start_at = 7; stop_at = 9 } ]
      ()
  in
  match Net.parse (Net.to_string f) with
  | Ok f' -> check_bool "round trip" true (f = f')
  | Error e -> Alcotest.fail e

let test_net_validate () =
  let ok f = check_bool "valid" true (Net.validate ~nprocs:3 f = Ok ()) in
  ok Net.none;
  ok
    (Net.make ~drop_permille:1000
       ~partitions:[ { Net.from_proc = 0; to_proc = 2; start_at = 0; stop_at = 5 } ]
       ());
  let bad f =
    check_bool "invalid" true (Result.is_error (Net.validate ~nprocs:3 f))
  in
  bad (Net.make ~drop_permille:(-1) ());
  bad (Net.make ~drop_permille:600 ~duplicate_permille:600 ());
  bad (Net.make ~spike:{ Net.permille = 10; factor = 0 } ());
  bad
    (Net.make
       ~partitions:[ { Net.from_proc = 0; to_proc = 3; start_at = 0; stop_at = 5 } ]
       ());
  bad
    (Net.make ~crashes:[ { Net.proc = 1; start_at = 5; stop_at = 5 } ] ())

(* ------------------------------------------------------------------ *)
(* The fault-matrix conformance suite                                  *)

let seeds = [ 1; 2; 3; 4; 5 ]

let part_0_1 = { Net.from_proc = 0; to_proc = 1; start_at = 10; stop_at = 80 }
let crash_1 = { Net.proc = 1; start_at = 20; stop_at = 70 }

(* the grid: random loss at and below the acceptance ceiling,
   duplication, their combination, a partition window, a crash-restart
   window and a heavy-tailed delay burst — each on top of loss *)
let grid =
  [
    ("drop100", Net.make ~drop_permille:100 ());
    ("drop200", Net.make ~drop_permille:200 ());
    ("dup150", Net.make ~duplicate_permille:150 ());
    ("drop+dup", Net.make ~drop_permille:100 ~duplicate_permille:100 ());
    ("part+drop", Net.make ~drop_permille:100 ~partitions:[ part_0_1 ] ());
    ("crash+drop", Net.make ~drop_permille:100 ~crashes:[ crash_1 ] ());
    ( "spike+drop",
      Net.make ~drop_permille:100 ~spike:{ Net.permille = 30; factor = 10 } ()
    );
  ]

(* every protocol in the repo, with the strongest spec that is cheap to
   check under its natural workload. sync protocols are checked against
   the causal spec (X_sync ⊆ X_co, Theorem 1); flush with ordinary sends
   and total order get liveness + traffic accounting only. *)
let unicast_ops = (Gen.uniform ~nprocs:3 ~nmsgs:30 ~seed:6).Gen.ops
let bcast_ops = (Gen.broadcast ~nprocs:3 ~nbcasts:10 ~seed:6).Gen.ops

let protocols =
  [
    ("tagless", Tagless.factory, None, unicast_ops);
    ("fifo", Fifo.factory, Some fifo_spec, unicast_ops);
    ("causal-rst", Causal_rst.factory, Some causal_spec, unicast_ops);
    ("causal-ses", Causal_ses.factory, Some causal_spec, unicast_ops);
    ("causal-bss", Causal_bss.factory, Some causal_spec, bcast_ops);
    ("sync-token", Sync_token.factory, Some causal_spec, unicast_ops);
    ("sync-priority", Sync_priority.factory, Some causal_spec, unicast_ops);
    ("flush", Flush.factory, None, unicast_ops);
    (* total order is a broadcast primitive: every process must see every
       ticket, so it gets the broadcast workload like BSS *)
    ("total-order", Total_order.factory, None, bcast_ops);
  ]

let config ~seed faults =
  { (Sim.default_config ~nprocs:3) with Sim.seed; faults }

(* the 9 × 7 × 5 grid is the slowest part of the suite, and its cells are
   independent simulations — so they run on the parallel pool, sharded by
   (protocol, fault-config, seed) cell. Workers only compute plain verdict
   records; every Alcotest assertion happens in the main domain afterwards,
   in cell order, so the reported failure (if any) is the same at every
   job count. *)
type cell_verdict = {
  cv_label : string;
  cv_live : bool;
  cv_traffic : bool;
  cv_spec : [ `Ok of bool | `Missing | `No_spec ];
}

let matrix_cells =
  List.concat_map
    (fun (pname, factory, spec, ops) ->
      List.concat_map
        (fun (fname, faults) ->
          List.map (fun seed -> (pname, factory, spec, ops, fname, faults, seed))
            seeds)
        grid)
    protocols

let run_cell (pname, factory, spec, ops, fname, faults, seed) =
  let label = Printf.sprintf "%s/%s seed %d" pname fname seed in
  let r =
    Conformance.check_exn ?spec (config ~seed faults) (Wrap.reliable factory)
      ops
  in
  {
    cv_label = label;
    cv_live = r.Conformance.live;
    cv_traffic = r.Conformance.traffic_consistent;
    cv_spec =
      (match (spec, r.Conformance.spec_ok) with
      | Some _, Some ok -> `Ok ok
      | Some _, None -> `Missing
      | None, _ -> `No_spec);
  }

let test_fault_matrix_wrapped () =
  let cells = Array.of_list matrix_cells in
  let pool = Mo_par.Pool.create () in
  let verdicts =
    Mo_par.Pool.map pool (Array.length cells) ~f:(fun i -> run_cell cells.(i))
  in
  Array.iter
    (fun v ->
      check_bool (v.cv_label ^ " live") true v.cv_live;
      check_bool (v.cv_label ^ " traffic consistent") true v.cv_traffic;
      match v.cv_spec with
      | `Ok ok -> check_bool (v.cv_label ^ " spec") true ok
      | `Missing -> Alcotest.fail (v.cv_label ^ ": no spec verdict")
      | `No_spec -> ())
    verdicts

let test_unwrapped_fails_liveness () =
  (* the wrapper is doing real work: on the same grid, the bare protocol
     loses messages on some seed in every lossy cell *)
  List.iter
    (fun (fname, faults) ->
      let lost = ref false in
      List.iter
        (fun seed ->
          match
            Sim.execute (config ~seed faults) Fifo.factory unicast_ops
          with
          | Error e -> Alcotest.fail (fname ^ ": " ^ e)
          | Ok o -> if not o.Sim.all_delivered then lost := true)
        seeds;
      check_bool (fname ^ " kills bare fifo on some seed") true !lost)
    (List.filter (fun (n, _) -> n <> "dup150" && n <> "spike+drop") grid);
  (* and a pure partition is deterministically fatal without recovery *)
  let faults =
    Net.make
      ~partitions:[ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = 100_000 } ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  (match Sim.execute (config ~seed:1 faults) Fifo.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "permanent partition, bare: message lost" false
        o.Sim.all_delivered;
      check_int "the drop is accounted as a fault" 1 o.Sim.stats.Sim.fault_drops);
  (* while a partition the retry budget can outlast is survived *)
  let faults =
    Net.make
      ~partitions:[ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = 300 } ]
      ()
  in
  match Sim.execute (config ~seed:1 faults) (Wrap.reliable Fifo.factory) ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "wrapped: delivered after the partition heals" true
        o.Sim.all_delivered;
      check_bool "recovery took retransmissions" true
        (o.Sim.stats.Sim.retransmits > 0)

let test_give_up_is_honest () =
  (* a partition longer than the whole retry budget: the sender must
     abandon the frame, report the run as not live, and terminate *)
  let faults =
    Net.make
      ~partitions:
        [ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = max_int / 2 } ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  let registry = Mo_obs.Metrics.create () in
  match
    Sim.execute (config ~seed:1 faults)
      (Wrap.reliable ~registry Fifo.factory)
      ops
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "not live" false o.Sim.all_delivered;
      check_int "exactly the retry cap was spent"
        Reliable.default_config.Reliable.max_retries
        o.Sim.stats.Sim.retransmits;
      check_bool "give-up is recorded" true
        (Mo_obs.Metrics.value registry "net.gave_up_total" = Some 1)

let test_recovery_metrics () =
  (* under loss, the registry shows the cost of reliability: timeouts
     fire, frames are retransmitted, acks flow *)
  let registry = Mo_obs.Metrics.create () in
  let faults = Net.make ~drop_permille:200 () in
  match
    Observe.run
      ~config:(config ~seed:3 faults)
      ~registry
      (Wrap.reliable ~registry Fifo.factory)
      unicast_ops
  with
  | Error e -> Alcotest.fail e
  | Ok (_, o) ->
      check_bool "live" true o.Sim.all_delivered;
      let v name =
        match Mo_obs.Metrics.value registry name with
        | Some v -> v
        | None -> Alcotest.fail ("metric missing: " ^ name)
      in
      check_bool "retransmits happened" true (v "net.retransmits_total" > 0);
      check_int "stats and metrics agree on retransmissions"
        o.Sim.stats.Sim.retransmits
        (v "net.retransmits_total");
      check_bool "every retransmit came from a timeout" true
        (v "net.timeouts_total" >= v "net.retransmits_total");
      check_bool "acks flowed" true (v "net.acks_total" > 0);
      check_bool "losses were injected" true (v "sim.fault_drops" > 0);
      match Mo_obs.Metrics.find_histogram registry "net.recovery_latency" with
      | None -> Alcotest.fail "recovery latency histogram missing"
      | Some h ->
          check_bool "recovered frames have positive latency" true
            (Mo_obs.Metrics.hist_count h = 0
            || Mo_obs.Metrics.hist_sum h > 0)

(* ------------------------------------------------------------------ *)
(* Fault determinism                                                   *)

let render_trace (o : Sim.outcome) =
  let buf = Buffer.create 1024 in
  let sr = o.Sim.sys_run in
  for p = 0 to Mo_order.Sys_run.nprocs sr - 1 do
    Buffer.add_string buf (string_of_int p);
    Buffer.add_char buf ':';
    List.iter
      (fun (e : Mo_order.Event.Sys.t) ->
        Buffer.add_string buf
          (Printf.sprintf " %d%s" e.Mo_order.Event.Sys.msg
             (match e.Mo_order.Event.Sys.kind with
             | Mo_order.Event.Sys.Invoke -> "i"
             | Mo_order.Event.Sys.Send -> "s"
             | Mo_order.Event.Sys.Receive -> "r"
             | Mo_order.Event.Sys.Deliver -> "d")))
      (Mo_order.Sys_run.sequence sr p);
    Buffer.add_char buf '\n'
  done;
  Array.iter
    (fun sp ->
      Buffer.add_string buf (Mo_obs.Jsonb.to_string (Mo_obs.Span.to_json sp));
      Buffer.add_char buf '\n')
    o.Sim.spans;
  Buffer.contents buf

let test_fault_determinism () =
  (* identical seed and fault config must give a byte-identical trace
     and metrics export — fault injection draws from the same seeded
     PRNG as the delays *)
  let faults =
    Net.make ~drop_permille:150 ~duplicate_permille:100
      ~spike:{ Net.permille = 25; factor = 6 }
      ~partitions:[ part_0_1 ] ~crashes:[ crash_1 ] ()
  in
  let run seed =
    match
      Observe.run ~config:(config ~seed faults) (Wrap.reliable Fifo.factory)
        unicast_ops
    with
    | Error e -> Alcotest.fail e
    | Ok (registry, o) ->
        (render_trace o, Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json registry))
  in
  let t1, m1 = run 7 and t2, m2 = run 7 in
  Alcotest.(check string) "byte-identical trace" t1 t2;
  Alcotest.(check string) "byte-identical metrics export" m1 m2;
  let t3, _ = run 8 in
  check_bool "different seed, different trace" true (t1 <> t3)

let () =
  Alcotest.run "reliable"
    [
      ( "window",
        [
          Alcotest.test_case "bounded dedup window" `Quick test_window_bound;
          Alcotest.test_case "dedup combinator is bounded" `Quick
            test_dedup_is_bounded;
        ] );
      ( "net",
        [
          Alcotest.test_case "parse fault syntax" `Quick test_net_parse;
          Alcotest.test_case "validate fault configs" `Quick test_net_validate;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "fault matrix, all protocols wrapped" `Slow
            test_fault_matrix_wrapped;
          Alcotest.test_case "unwrapped loses liveness" `Quick
            test_unwrapped_fails_liveness;
          Alcotest.test_case "retry cap gives up honestly" `Quick
            test_give_up_is_honest;
          Alcotest.test_case "recovery metrics" `Quick test_recovery_metrics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "faulty runs are deterministic" `Quick
            test_fault_determinism;
        ] );
    ]
