(* The reliable-channel substrate, conformance-verified under faults:
   every protocol wrapped in [Wrap.reliable] must stay live AND keep its
   ordering guarantee across a grid of fault configurations — the
   executable form of "the paper's reliable-network assumption is a
   derived property, not an axiom". The same grid without the wrapper
   demonstrably loses liveness, which keeps the positive results honest. *)

open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ]
let fifo_spec = Spec.make ~name:"fifo" [ Catalog.fifo.Catalog.pred ]

(* ------------------------------------------------------------------ *)
(* Window: the bounded dedup memory                                    *)

let test_window_bound () =
  let w = Reliable.Window.create ~size:8 in
  check_int "capacity is the requested size" 8 (Reliable.Window.capacity w);
  check_bool "fresh id unseen" false (Reliable.Window.mem w 0);
  check_bool "first mark is fresh" true (Reliable.Window.mark w 0);
  check_bool "second mark is a duplicate" false (Reliable.Window.mark w 0);
  (* ids well past the window age out the old ones... *)
  for i = 1 to 100 do
    check_bool "ascending ids all fresh" true (Reliable.Window.mark w i)
  done;
  (* ...and anything below high - size is assumed already seen *)
  check_bool "aged-out id counts as seen" true (Reliable.Window.mem w 3);
  check_bool "aged-out mark rejected" false (Reliable.Window.mark w 3);
  check_int "capacity never grows" 8 (Reliable.Window.capacity w);
  (* within the window, membership stays exact: jump ahead leaving gaps *)
  let w2 = Reliable.Window.create ~size:8 in
  check_bool "gap jump" true (Reliable.Window.mark w2 100);
  check_bool "unmarked id inside the window is unseen" false
    (Reliable.Window.mem w2 97);
  check_bool "marked id inside the window is seen" true
    (Reliable.Window.mem w2 100);
  Alcotest.check_raises "size must be positive"
    (Invalid_argument "Reliable.Window.create: size must be positive")
    (fun () -> ignore (Reliable.Window.create ~size:0))

let test_dedup_is_bounded () =
  (* the dedup combinator must stay correct with a window far smaller
     than the run: duplicates arrive close to the original, so a small
     exact window suffices *)
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:60 ~seed:6).Gen.ops in
  List.iter
    (fun seed ->
      let cfg =
        {
          (Sim.default_config ~nprocs:3) with
          Sim.seed;
          faults = Net.make ~duplicate_permille:250 ();
        }
      in
      match Sim.execute cfg (Wrap.dedup ~window:16 Tagless.factory) ops with
      | Error e -> Alcotest.fail e
      | Ok o ->
          check_bool "live under duplication with a 16-slot window" true
            o.Sim.all_delivered)
    (List.init 8 Fun.id)

(* ------------------------------------------------------------------ *)
(* Net: parsing and validation                                         *)

let test_net_parse () =
  (match Net.parse "drop=150,dup=50,spike=20x8,part=0>1@100-400,crash=2@200-500"
   with
  | Error e -> Alcotest.fail e
  | Ok f ->
      check_int "drop" 150 f.Net.drop_permille;
      check_int "dup" 50 f.Net.duplicate_permille;
      check_int "spike permille" 20 f.Net.spike.Net.permille;
      check_int "spike factor" 8 f.Net.spike.Net.factor;
      (match f.Net.partitions with
      | [ p ] ->
          check_int "part src" 0 p.Net.from_proc;
          check_int "part dst" 1 p.Net.to_proc;
          check_int "part start" 100 p.Net.start_at;
          check_int "part stop" 400 p.Net.stop_at
      | _ -> Alcotest.fail "expected one partition");
      match f.Net.crashes with
      | [ c ] ->
          check_int "crash proc" 2 c.Net.proc;
          check_int "crash start" 200 c.Net.start_at;
          check_int "crash stop" 500 c.Net.stop_at
      | _ -> Alcotest.fail "expected one crash");
  (match Net.parse "" with
  | Ok f -> check_bool "empty spec means no faults" true (Net.is_none f)
  | Error e -> Alcotest.fail e);
  (match Net.parse "part=0>1@10-20,part=1>0@30-40" with
  | Ok f -> check_int "repeatable clauses" 2 (List.length f.Net.partitions)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Net.parse bad with
      | Ok _ -> Alcotest.fail ("parse should reject: " ^ bad)
      | Error _ -> ())
    [ "drop"; "drop=x"; "spike=20"; "part=0-1@2-3"; "crash=1@9"; "nope=3" ];
  (* to_string round-trips through parse *)
  let f =
    Net.make ~drop_permille:10 ~spike:{ Net.permille = 5; factor = 3 }
      ~crashes:[ { Net.proc = 1; start_at = 7; stop_at = 9 } ]
      ()
  in
  match Net.parse (Net.to_string f) with
  | Ok f' -> check_bool "round trip" true (f = f')
  | Error e -> Alcotest.fail e

let test_net_validate () =
  let ok f = check_bool "valid" true (Net.validate ~nprocs:3 f = Ok ()) in
  ok Net.none;
  ok
    (Net.make ~drop_permille:1000
       ~partitions:[ { Net.from_proc = 0; to_proc = 2; start_at = 0; stop_at = 5 } ]
       ());
  let bad f =
    check_bool "invalid" true (Result.is_error (Net.validate ~nprocs:3 f))
  in
  bad (Net.make ~drop_permille:(-1) ());
  bad (Net.make ~drop_permille:600 ~duplicate_permille:600 ());
  bad (Net.make ~spike:{ Net.permille = 10; factor = 0 } ());
  bad
    (Net.make
       ~partitions:[ { Net.from_proc = 0; to_proc = 3; start_at = 0; stop_at = 5 } ]
       ());
  bad
    (Net.make ~crashes:[ { Net.proc = 1; start_at = 5; stop_at = 5 } ] ())

(* ------------------------------------------------------------------ *)
(* The fault-matrix conformance suite                                  *)

let seeds = [ 1; 2; 3; 4; 5 ]

let part_0_1 = { Net.from_proc = 0; to_proc = 1; start_at = 10; stop_at = 80 }
let crash_1 = { Net.proc = 1; start_at = 20; stop_at = 70 }

(* the grid: random loss at and below the acceptance ceiling,
   duplication, their combination, a partition window, a crash-restart
   window and a heavy-tailed delay burst — each on top of loss *)
let grid =
  [
    ("drop100", Net.make ~drop_permille:100 ());
    ("drop200", Net.make ~drop_permille:200 ());
    ("dup150", Net.make ~duplicate_permille:150 ());
    ("drop+dup", Net.make ~drop_permille:100 ~duplicate_permille:100 ());
    ("part+drop", Net.make ~drop_permille:100 ~partitions:[ part_0_1 ] ());
    ("crash+drop", Net.make ~drop_permille:100 ~crashes:[ crash_1 ] ());
    ( "spike+drop",
      Net.make ~drop_permille:100 ~spike:{ Net.permille = 30; factor = 10 } ()
    );
  ]

(* every protocol in the repo, with the strongest spec that is cheap to
   check under its natural workload. sync protocols are checked against
   the causal spec (X_sync ⊆ X_co, Theorem 1); flush with ordinary sends
   and total order get liveness + traffic accounting only. *)
let unicast_ops = (Gen.uniform ~nprocs:3 ~nmsgs:30 ~seed:6).Gen.ops
let bcast_ops = (Gen.broadcast ~nprocs:3 ~nbcasts:10 ~seed:6).Gen.ops

let protocols =
  [
    ("tagless", Tagless.factory, None, unicast_ops);
    ("fifo", Fifo.factory, Some fifo_spec, unicast_ops);
    ("causal-rst", Causal_rst.factory, Some causal_spec, unicast_ops);
    ("causal-ses", Causal_ses.factory, Some causal_spec, unicast_ops);
    ("causal-bss", Causal_bss.factory, Some causal_spec, bcast_ops);
    ("sync-token", Sync_token.factory, Some causal_spec, unicast_ops);
    ("sync-priority", Sync_priority.factory, Some causal_spec, unicast_ops);
    ("flush", Flush.factory, None, unicast_ops);
    (* total order is a broadcast primitive: every process must see every
       ticket, so it gets the broadcast workload like BSS *)
    ("total-order", Total_order.factory, None, bcast_ops);
  ]

let config ~seed faults =
  { (Sim.default_config ~nprocs:3) with Sim.seed; faults }

(* the 9 × 7 × 5 grid is the slowest part of the suite, and its cells are
   independent simulations — so they run on the parallel pool, sharded by
   (protocol, fault-config, seed) cell. Workers only compute plain verdict
   records; every Alcotest assertion happens in the main domain afterwards,
   in cell order, so the reported failure (if any) is the same at every
   job count. *)
type cell_verdict = {
  cv_label : string;
  cv_live : bool;
  cv_traffic : bool;
  cv_spec : [ `Ok of bool | `Missing | `No_spec ];
}

let matrix_cells =
  List.concat_map
    (fun (pname, factory, spec, ops) ->
      List.concat_map
        (fun (fname, faults) ->
          List.map (fun seed -> (pname, factory, spec, ops, fname, faults, seed))
            seeds)
        grid)
    protocols

let run_cell (pname, factory, spec, ops, fname, faults, seed) =
  let label = Printf.sprintf "%s/%s seed %d" pname fname seed in
  let r =
    Conformance.check_exn ?spec (config ~seed faults) (Wrap.reliable factory)
      ops
  in
  {
    cv_label = label;
    cv_live = r.Conformance.live;
    cv_traffic = r.Conformance.traffic_consistent;
    cv_spec =
      (match (spec, r.Conformance.spec_ok) with
      | Some _, Some ok -> `Ok ok
      | Some _, None -> `Missing
      | None, _ -> `No_spec);
  }

let test_fault_matrix_wrapped () =
  let cells = Array.of_list matrix_cells in
  let pool = Mo_par.Pool.create () in
  let verdicts =
    Mo_par.Pool.map pool (Array.length cells) ~f:(fun i -> run_cell cells.(i))
  in
  Array.iter
    (fun v ->
      check_bool (v.cv_label ^ " live") true v.cv_live;
      check_bool (v.cv_label ^ " traffic consistent") true v.cv_traffic;
      match v.cv_spec with
      | `Ok ok -> check_bool (v.cv_label ^ " spec") true ok
      | `Missing -> Alcotest.fail (v.cv_label ^ ": no spec verdict")
      | `No_spec -> ())
    verdicts

let test_unwrapped_fails_liveness () =
  (* the wrapper is doing real work: on the same grid, the bare protocol
     loses messages on some seed in every lossy cell *)
  List.iter
    (fun (fname, faults) ->
      let lost = ref false in
      List.iter
        (fun seed ->
          match
            Sim.execute (config ~seed faults) Fifo.factory unicast_ops
          with
          | Error e -> Alcotest.fail (fname ^ ": " ^ e)
          | Ok o -> if not o.Sim.all_delivered then lost := true)
        seeds;
      check_bool (fname ^ " kills bare fifo on some seed") true !lost)
    (List.filter (fun (n, _) -> n <> "dup150" && n <> "spike+drop") grid);
  (* and a pure partition is deterministically fatal without recovery *)
  let faults =
    Net.make
      ~partitions:[ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = 100_000 } ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  (match Sim.execute (config ~seed:1 faults) Fifo.factory ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "permanent partition, bare: message lost" false
        o.Sim.all_delivered;
      check_int "the drop is accounted as a fault" 1 o.Sim.stats.Sim.fault_drops);
  (* while a partition the retry budget can outlast is survived *)
  let faults =
    Net.make
      ~partitions:[ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = 300 } ]
      ()
  in
  match Sim.execute (config ~seed:1 faults) (Wrap.reliable Fifo.factory) ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "wrapped: delivered after the partition heals" true
        o.Sim.all_delivered;
      check_bool "recovery took retransmissions" true
        (o.Sim.stats.Sim.retransmits > 0)

let test_give_up_is_honest () =
  (* a partition longer than the whole retry budget: the sender must
     abandon the frame, report the run as not live, and terminate *)
  let faults =
    Net.make
      ~partitions:
        [ { Net.from_proc = 0; to_proc = 1; start_at = 0; stop_at = max_int / 2 } ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  let registry = Mo_obs.Metrics.create () in
  match
    Sim.execute (config ~seed:1 faults)
      (Wrap.reliable ~registry Fifo.factory)
      ops
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "not live" false o.Sim.all_delivered;
      check_int "exactly the retry cap was spent"
        Reliable.default_config.Reliable.max_retries
        o.Sim.stats.Sim.retransmits;
      check_bool "give-up is recorded" true
        (Mo_obs.Metrics.value registry "net.gave_up_total" = Some 1)

let test_recovery_metrics () =
  (* under loss, the registry shows the cost of reliability: timeouts
     fire, frames are retransmitted, acks flow *)
  let registry = Mo_obs.Metrics.create () in
  let faults = Net.make ~drop_permille:200 () in
  match
    Observe.run
      ~config:(config ~seed:3 faults)
      ~registry
      (Wrap.reliable ~registry Fifo.factory)
      unicast_ops
  with
  | Error e -> Alcotest.fail e
  | Ok (_, o) ->
      check_bool "live" true o.Sim.all_delivered;
      let v name =
        match Mo_obs.Metrics.value registry name with
        | Some v -> v
        | None -> Alcotest.fail ("metric missing: " ^ name)
      in
      check_bool "retransmits happened" true (v "net.retransmits_total" > 0);
      check_int "stats and metrics agree on retransmissions"
        o.Sim.stats.Sim.retransmits
        (v "net.retransmits_total");
      check_bool "every retransmit came from a timeout" true
        (v "net.timeouts_total" >= v "net.retransmits_total");
      check_bool "acks flowed" true (v "net.acks_total" > 0);
      check_bool "losses were injected" true (v "sim.fault_drops" > 0);
      match Mo_obs.Metrics.find_histogram registry "net.recovery_latency" with
      | None -> Alcotest.fail "recovery latency histogram missing"
      | Some h ->
          check_bool "recovered frames have positive latency" true
            (Mo_obs.Metrics.hist_count h = 0
            || Mo_obs.Metrics.hist_sum h > 0)

(* ------------------------------------------------------------------ *)
(* The shared-transport substrate                                      *)

let test_topology_parse () =
  List.iter
    (fun topo ->
      match Transport.topology_of_string (Transport.topology_to_string topo) with
      | Ok t -> check_bool "topology name round trips" true (t = topo)
      | Error e -> Alcotest.fail e)
    Transport.all_topologies;
  check_bool "per_pair alias" true
    (Transport.topology_of_string "per_pair" = Ok Transport.Per_pair);
  check_bool "unknown topology rejected" true
    (Result.is_error (Transport.topology_of_string "mesh"));
  check_int "shared has one transport" 1
    (Transport.ntransports Transport.Shared ~nprocs:4);
  check_int "per-pair has nprocs^2" 16
    (Transport.ntransports Transport.Per_pair ~nprocs:4);
  check_int "split2 has two" 2
    (Transport.ntransports Transport.Split2 ~nprocs:4);
  check_int "shared maps every channel to 0" 0
    (Transport.transport_of Transport.Shared ~nprocs:4 ~from_proc:2 ~to_proc:3);
  check_int "per-pair gives each directed pair its own" 11
    (Transport.transport_of Transport.Per_pair ~nprocs:4 ~from_proc:2
       ~to_proc:3);
  check_int "split2 splits by endpoint parity" 1
    (Transport.transport_of Transport.Split2 ~nprocs:4 ~from_proc:2 ~to_proc:3)

let test_net_parse_tfaults () =
  (match Net.parse "stall=0@20-60,tpart=1@30-50,tcrash=0@80-100" with
  | Error e -> Alcotest.fail e
  | Ok f -> (
      match f.Net.transport_faults with
      | [ s; p; c ] ->
          check_bool "stall kind" true (s.Net.kind = Net.T_stall);
          check_int "stall transport" 0 s.Net.transport;
          check_int "stall start" 20 s.Net.start_at;
          check_int "stall stop" 60 s.Net.stop_at;
          check_bool "tpart kind" true (p.Net.kind = Net.T_partition);
          check_int "tpart transport" 1 p.Net.transport;
          check_bool "tcrash kind" true (c.Net.kind = Net.T_crash);
          check_int "tcrash stop" 100 c.Net.stop_at
      | l -> Alcotest.failf "expected three transport faults, got %d"
               (List.length l)));
  (* to_string round-trips *)
  (match Net.parse "drop=50,stall=0@1-2,tcrash=1@3-4" with
  | Error e -> Alcotest.fail e
  | Ok f -> (
      match Net.parse (Net.to_string f) with
      | Ok f' -> check_bool "tfault round trip" true (f = f')
      | Error e -> Alcotest.fail e));
  List.iter
    (fun bad ->
      match Net.parse bad with
      | Ok _ -> Alcotest.fail ("parse should reject: " ^ bad)
      | Error _ -> ())
    [ "stall=0"; "stall=@1-2"; "tcrash=0@5"; "tpart=x@1-2" ];
  (* validation: negative ids and empty windows are structural errors *)
  check_bool "negative transport id rejected" true
    (Result.is_error
       (Net.validate ~nprocs:3
          (Net.make
             ~transport_faults:
               [ { Net.transport = -1; kind = Net.T_stall; start_at = 0; stop_at = 5 } ]
             ())));
  check_bool "empty window rejected" true
    (Result.is_error
       (Net.validate ~nprocs:3
          (Net.make
             ~transport_faults:
               [ { Net.transport = 0; kind = Net.T_crash; start_at = 5; stop_at = 5 } ]
             ())))

let test_topology_required () =
  (* transport faults without a topology are a configuration error, not a
     silent no-op; a transport id past the topology's count likewise *)
  let tf k = [ { Net.transport = 1; kind = k; start_at = 0; stop_at = 10 } ] in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  let expect_invalid cfg msg =
    match Sim.execute cfg Tagless.factory ops with
    | exception Invalid_argument _ -> ()
    | Ok _ | Error _ -> Alcotest.fail msg
  in
  expect_invalid
    {
      (Sim.default_config ~nprocs:3) with
      Sim.faults = Net.make ~transport_faults:(tf Net.T_stall) ();
    }
    "transport faults without topology must be rejected";
  expect_invalid
    {
      (Sim.default_config ~nprocs:3) with
      Sim.faults = Net.make ~transport_faults:(tf Net.T_crash) ();
      topology = Some Transport.Shared;
    }
    "transport id out of range for shared must be rejected";
  (* the same id is fine under a topology with enough transports *)
  match
    Sim.execute
      {
        (Sim.default_config ~nprocs:3) with
        Sim.faults = Net.make ~transport_faults:(tf Net.T_stall) ();
        topology = Some Transport.Split2;
      }
      Tagless.factory ops
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e
  | exception Invalid_argument e -> Alcotest.fail e

(* the wire state machine, driven directly: seqno assignment, reorder
   buffering, loss gaps, duplicates, epochs *)
let test_wire_fifo_unit () =
  let ts = Transport.create Transport.Shared ~nprocs:2 ~faults:Net.none in
  let enter ~now =
    match Transport.enter ts ~now ~from_proc:0 ~to_proc:1 with
    | Transport.Entered { epoch; seq } -> (epoch, seq)
    | Transport.Entry_lost -> Alcotest.fail "entry lost on a clean transport"
  in
  let pkt id = Message.Control { Message.kind = "t"; data = [| id |] } in
  let recv ~now ~epoch ~seq p =
    Transport.receive ts ~now ~from_proc:0 ~to_proc:1 ~epoch ~seq p
  in
  let e0, s0 = enter ~now:0 in
  let e1, s1 = enter ~now:1 in
  let e2, s2 = enter ~now:2 in
  check_int "seqs ascend" 0 s0;
  check_int "seqs ascend" 1 s1;
  check_int "seqs ascend" 2 s2;
  check_int "epoch 0" 0 e0;
  (* seq 1 overtakes seq 0: held; seq 0 arrives: both release in order *)
  let r1, d1 = recv ~now:5 ~epoch:e1 ~seq:s1 (pkt 1) in
  check_bool "overtaking packet is held" true (r1 = [] && d1 = 0);
  check_int "held packet is pending" 1 (Transport.pending ts);
  let r0, _ = recv ~now:7 ~epoch:e0 ~seq:s0 (pkt 0) in
  check_int "gap fill releases the run in seq order" 2 (List.length r0);
  check_bool "release order is seq order" true (r0 = [ pkt 0; pkt 1 ]);
  check_int "nothing left pending" 0 (Transport.pending ts);
  let c = Transport.counters ts in
  check_int "one packet was head-of-line blocked" 1 c.Transport.hol_released;
  check_int "it waited 2 ticks" 2 c.Transport.hol_wait_ticks;
  (* a lost seq must not block the channel forever *)
  Transport.mark_lost ts ~from_proc:0 ~to_proc:1 ~epoch:e2 ~seq:s2;
  let _, s3 = enter ~now:8 in
  let r3, _ = recv ~now:9 ~epoch:e0 ~seq:s3 (pkt 3) in
  check_bool "cursor skips the lost seq" true (r3 = [ pkt 3 ]);
  (* a duplicate of an already-released seq passes straight through *)
  let rd, _ = recv ~now:10 ~epoch:e0 ~seq:s0 (pkt 0) in
  check_bool "stale duplicate passes through" true (rd = [ pkt 0 ]);
  check_int "the dup is accounted" 1 (Transport.counters ts).Transport.wire_dups

let test_wire_epoch_unit () =
  let faults =
    Net.make
      ~transport_faults:
        [ { Net.transport = 0; kind = Net.T_crash; start_at = 10; stop_at = 20 } ]
      ()
  in
  let ts = Transport.create Transport.Shared ~nprocs:2 ~faults in
  let pkt id = Message.Control { Message.kind = "t"; data = [| id |] } in
  let enter ~now =
    match Transport.enter ts ~now ~from_proc:0 ~to_proc:1 with
    | Transport.Entered { epoch; seq } -> `E (epoch, seq)
    | Transport.Entry_lost -> `Lost
  in
  let recv ~now ~epoch ~seq p =
    Transport.receive ts ~now ~from_proc:0 ~to_proc:1 ~epoch ~seq p
  in
  (* pre-crash: epoch 0, seqs 0 and 1; seq 0 delivered, seq 1 in flight *)
  let e0, s0 = match enter ~now:0 with `E v -> v | `Lost -> Alcotest.fail "lost" in
  let _e, s1 = match enter ~now:1 with `E v -> v | `Lost -> Alcotest.fail "lost" in
  check_int "epoch before the crash" 0 e0;
  ignore (recv ~now:5 ~epoch:e0 ~seq:s0 (pkt 0));
  (* entry during the crash window dies *)
  check_bool "entry during the crash window is lost" true
    (enter ~now:12 = `Lost);
  (* the in-flight pre-crash packet arrives after the restart: dead *)
  let r, d = recv ~now:25 ~epoch:e0 ~seq:s1 (pkt 1) in
  check_bool "pre-crash packet does not survive the restart" true
    (r = [] && d = 1);
  (* post-restart: a new epoch, seqs from zero, receiver resyncs *)
  (match enter ~now:30 with
  | `E (e, s) ->
      check_int "new epoch after the restart" 1 e;
      check_int "seqs restart from zero" 0 s;
      let r, d = recv ~now:33 ~epoch:e ~seq:s (pkt 2) in
      check_bool "first new-epoch packet releases" true (r = [ pkt 2 ] && d = 0)
  | `Lost -> Alcotest.fail "post-restart entry lost");
  let c = Transport.counters ts in
  check_int "resync happened once" 1 c.Transport.resyncs;
  check_int "two packets died in the crash (entry + in flight)" 2
    c.Transport.crash_drops

let test_wire_stall_unit () =
  let faults =
    Net.make
      ~transport_faults:
        [
          { Net.transport = 0; kind = Net.T_stall; start_at = 10; stop_at = 30 };
          (* back-to-back window: the deferred arrival lands in it and is
             deferred again *)
          { Net.transport = 0; kind = Net.T_stall; start_at = 30; stop_at = 40 };
          { Net.transport = 1; kind = Net.T_stall; start_at = 0; stop_at = 100 };
        ]
      ()
  in
  let ts = Transport.create Transport.Split2 ~nprocs:2 ~faults in
  let arrival ~from_proc ~to_proc base =
    Transport.arrival ts ~now:0 ~from_proc ~to_proc ~base
  in
  (* channel 0→0 rides transport 0; channel 0→1 rides transport 1 *)
  check_int "arrival before the stall is untouched" 5 (arrival ~from_proc:0 ~to_proc:0 5);
  check_int "arrival inside the stall defers to the chain's end" 40
    (arrival ~from_proc:0 ~to_proc:0 15);
  check_int "arrival at the boundary is free" 40 (arrival ~from_proc:0 ~to_proc:0 40);
  check_int "the other transport's stall holds its own channels" 100
    (arrival ~from_proc:0 ~to_proc:1 50);
  (* the chained deferral counts once per packet, not once per window *)
  check_int "two arrivals were deferred" 2
    (Transport.counters ts).Transport.stall_delays

(* FIFO-within-channel is a property of the substrate, not the protocol:
   even the tagless protocol (no ordering logic at all) sees per-channel
   sends arrive in send order — while the historical wire demonstrably
   reorders the same workload *)
let receive_order_matches_send_order (o : Sim.outcome) =
  let nprocs = Mo_order.Sys_run.nprocs o.Sim.sys_run in
  let ok = ref true in
  for s = 0 to nprocs - 1 do
    for d = 0 to nprocs - 1 do
      let on_channel i = o.Sim.msgs.(i) = (s, d) in
      let sends =
        List.filter_map
          (fun (e : Mo_order.Event.Sys.t) ->
            if e.kind = Mo_order.Event.Sys.Send && on_channel e.msg then
              Some e.msg
            else None)
          (Mo_order.Sys_run.sequence o.Sim.sys_run s)
      and recvs =
        List.filter_map
          (fun (e : Mo_order.Event.Sys.t) ->
            if e.kind = Mo_order.Event.Sys.Receive && on_channel e.msg then
              Some e.msg
            else None)
          (Mo_order.Sys_run.sequence o.Sim.sys_run d)
      in
      if List.sort compare sends = List.sort compare recvs && sends <> recvs
      then ok := false
    done
  done;
  !ok

let test_fifo_within_channel () =
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:60 ~seed:11).Gen.ops in
  let reordered_without = ref false in
  List.iter
    (fun seed ->
      let base = { (Sim.default_config ~nprocs:3) with Sim.seed; jitter = 9 } in
      List.iter
        (fun topo ->
          match
            Sim.execute { base with Sim.topology = Some topo } Tagless.factory
              ops
          with
          | Error e -> Alcotest.fail e
          | Ok o ->
              check_bool
                (Printf.sprintf "all delivered (%s, seed %d)"
                   (Transport.topology_to_string topo)
                   seed)
                true o.Sim.all_delivered;
              check_bool
                (Printf.sprintf "FIFO within channel (%s, seed %d)"
                   (Transport.topology_to_string topo)
                   seed)
                true
                (receive_order_matches_send_order o))
        Transport.all_topologies;
      match Sim.execute base Tagless.factory ops with
      | Error e -> Alcotest.fail e
      | Ok o ->
          if not (receive_order_matches_send_order o) then
            reordered_without := true)
    [ 1; 2; 3 ];
  check_bool "the historical wire reorders the same workload" true
    !reordered_without

(* ------------------------------------------------------------------ *)
(* The topology conformance matrix: all 9 protocols, all 3 topologies,
   transport-domain faults on. Sharded over the pool like the channel
   fault matrix; MO_TOPOLOGY_DEEP widens the seed set. *)

let topo_seeds =
  if Sys.getenv_opt "MO_TOPOLOGY_DEEP" <> None then [ 1; 2; 3; 4; 5 ]
  else [ 1; 2 ]

(* transport 0 exists under every topology. Windows sized to the 30-msg
   workloads (invokes span t = 0..58): every fault heals early enough for
   the retry budget to recover everything. *)
let tgrid =
  [
    ("stall", Net.make
       ~transport_faults:
         [ { Net.transport = 0; kind = Net.T_stall; start_at = 10; stop_at = 50 } ]
       ());
    ("tpart", Net.make
       ~transport_faults:
         [ { Net.transport = 0; kind = Net.T_partition; start_at = 10; stop_at = 60 } ]
       ());
    ("tcrash", Net.make
       ~transport_faults:
         [ { Net.transport = 0; kind = Net.T_crash; start_at = 20; stop_at = 55 } ]
       ());
    (* a partition overlapping a crash-restart on the same transport: the
       retransmits that the partition forces run into the crash, and the
       crash's seqno reset must not strand them *)
    ( "tpart+tcrash",
      Net.make
        ~transport_faults:
          [
            { Net.transport = 0; kind = Net.T_partition; start_at = 10; stop_at = 45 };
            { Net.transport = 0; kind = Net.T_crash; start_at = 30; stop_at = 60 };
          ]
        () );
    (* both fault domains at once: channel-level loss under a transport
       crash *)
    ( "tcrash+drop",
      Net.make ~drop_permille:100
        ~transport_faults:
          [ { Net.transport = 0; kind = Net.T_crash; start_at = 20; stop_at = 55 } ]
        () );
  ]

let topo_matrix_cells =
  List.concat_map
    (fun (pname, factory, spec, ops) ->
      List.concat_map
        (fun topo ->
          List.concat_map
            (fun (fname, faults) ->
              List.map
                (fun seed -> (pname, factory, spec, ops, topo, fname, faults, seed))
                topo_seeds)
            tgrid)
        Transport.all_topologies)
    protocols

let run_topo_cell (pname, factory, spec, ops, topo, fname, faults, seed) =
  let label =
    Printf.sprintf "%s/%s/%s seed %d" pname
      (Transport.topology_to_string topo)
      fname seed
  in
  let cfg = { (config ~seed faults) with Sim.topology = Some topo } in
  let r = Conformance.check_exn ?spec cfg (Wrap.reliable factory) ops in
  {
    cv_label = label;
    cv_live = r.Conformance.live;
    cv_traffic = r.Conformance.traffic_consistent;
    cv_spec =
      (match (spec, r.Conformance.spec_ok) with
      | Some _, Some ok -> `Ok ok
      | Some _, None -> `Missing
      | None, _ -> `No_spec);
  }

let test_topology_matrix () =
  let cells = Array.of_list topo_matrix_cells in
  let pool = Mo_par.Pool.create () in
  let verdicts =
    Mo_par.Pool.map pool (Array.length cells) ~f:(fun i ->
        run_topo_cell cells.(i))
  in
  Array.iter
    (fun v ->
      check_bool (v.cv_label ^ " live") true v.cv_live;
      check_bool (v.cv_label ^ " traffic consistent") true v.cv_traffic;
      match v.cv_spec with
      | `Ok ok -> check_bool (v.cv_label ^ " spec") true ok
      | `Missing -> Alcotest.fail (v.cv_label ^ ": no spec verdict")
      | `No_spec -> ())
    verdicts

let test_combined_link_faults () =
  (* the satellite schedule: a link partition overlapping a process
     crash-restart on the same link — recovery must compose, not deadlock *)
  let faults =
    Net.make ~drop_permille:100
      ~partitions:[ { Net.from_proc = 0; to_proc = 1; start_at = 10; stop_at = 80 } ]
      ~crashes:[ { Net.proc = 1; start_at = 30; stop_at = 90 } ]
      ()
  in
  List.iter
    (fun seed ->
      match
        Conformance.check_exn ~spec:fifo_spec (config ~seed faults)
          (Wrap.reliable Fifo.factory) unicast_ops
      with
      | r ->
          check_bool
            (Printf.sprintf "live under partition∩crash (seed %d)" seed)
            true r.Conformance.live;
          check_bool "order kept" true (r.Conformance.spec_ok = Some true))
    seeds

let test_transport_partition_gives_up () =
  (* a transport partition the retry budget cannot outlast: every channel
     on the transport reports failure — no silent loss, no deadlock *)
  let faults =
    Net.make
      ~transport_faults:
        [
          {
            Net.transport = 0;
            kind = Net.T_partition;
            start_at = 0;
            stop_at = max_int / 2;
          };
        ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:0 ~src:2 ~dst:1 () ] in
  let registry = Mo_obs.Metrics.create () in
  let cfg =
    { (config ~seed:1 faults) with Sim.topology = Some Transport.Shared }
  in
  match Sim.execute cfg (Wrap.reliable ~registry Fifo.factory) ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "not live" false o.Sim.all_delivered;
      check_bool "both channels gave up" true
        (Mo_obs.Metrics.value registry "net.gave_up_total" = Some 2);
      check_bool "drops accounted to the transport" true
        ((match o.Sim.transport with
         | Some ts -> (Transport.counters ts).Transport.part_drops
         | None -> 0)
        > 0)

let test_mid_retransmit_partition_degrades () =
  (* a transport partition covering the whole early retransmit cycle:
     recovery backs off through the window and completes after the heal —
     degraded, never deadlocked *)
  let faults =
    Net.make
      ~transport_faults:
        [
          { Net.transport = 0; kind = Net.T_partition; start_at = 0; stop_at = 400 };
        ]
      ()
  in
  let ops = [ Sim.op ~at:0 ~src:0 ~dst:1 () ] in
  let cfg =
    { (config ~seed:1 faults) with Sim.topology = Some Transport.Shared }
  in
  match Sim.execute cfg (Wrap.reliable Fifo.factory) ops with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "delivered after the heal" true o.Sim.all_delivered;
      check_bool "the heal cost retransmissions" true
        (o.Sim.stats.Sim.retransmits > 0)

(* ------------------------------------------------------------------ *)
(* Fault determinism                                                   *)

let render_trace (o : Sim.outcome) =
  let buf = Buffer.create 1024 in
  let sr = o.Sim.sys_run in
  for p = 0 to Mo_order.Sys_run.nprocs sr - 1 do
    Buffer.add_string buf (string_of_int p);
    Buffer.add_char buf ':';
    List.iter
      (fun (e : Mo_order.Event.Sys.t) ->
        Buffer.add_string buf
          (Printf.sprintf " %d%s" e.Mo_order.Event.Sys.msg
             (match e.Mo_order.Event.Sys.kind with
             | Mo_order.Event.Sys.Invoke -> "i"
             | Mo_order.Event.Sys.Send -> "s"
             | Mo_order.Event.Sys.Receive -> "r"
             | Mo_order.Event.Sys.Deliver -> "d")))
      (Mo_order.Sys_run.sequence sr p);
    Buffer.add_char buf '\n'
  done;
  Array.iter
    (fun sp ->
      Buffer.add_string buf (Mo_obs.Jsonb.to_string (Mo_obs.Span.to_json sp));
      Buffer.add_char buf '\n')
    o.Sim.spans;
  Buffer.contents buf

let test_fault_determinism () =
  (* identical seed and fault config must give a byte-identical trace
     and metrics export — fault injection draws from the same seeded
     PRNG as the delays *)
  let faults =
    Net.make ~drop_permille:150 ~duplicate_permille:100
      ~spike:{ Net.permille = 25; factor = 6 }
      ~partitions:[ part_0_1 ] ~crashes:[ crash_1 ] ()
  in
  let run seed =
    match
      Observe.run ~config:(config ~seed faults) (Wrap.reliable Fifo.factory)
        unicast_ops
    with
    | Error e -> Alcotest.fail e
    | Ok (registry, o) ->
        (render_trace o, Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json registry))
  in
  let t1, m1 = run 7 and t2, m2 = run 7 in
  Alcotest.(check string) "byte-identical trace" t1 t2;
  Alcotest.(check string) "byte-identical metrics export" m1 m2;
  let t3, _ = run 8 in
  check_bool "different seed, different trace" true (t1 <> t3)

let test_topology_determinism () =
  (* the substrate must not cost determinism: same seed, same topology,
     same transport faults — byte-identical trace and metrics *)
  let faults =
    Net.make ~drop_permille:100 ~duplicate_permille:80
      ~transport_faults:
        [
          { Net.transport = 0; kind = Net.T_stall; start_at = 10; stop_at = 40 };
          { Net.transport = 0; kind = Net.T_crash; start_at = 60; stop_at = 90 };
        ]
      ()
  in
  let run seed =
    let cfg =
      { (config ~seed faults) with Sim.topology = Some Transport.Split2 }
    in
    match Observe.run ~config:cfg (Wrap.reliable Fifo.factory) unicast_ops with
    | Error e -> Alcotest.fail e
    | Ok (registry, o) ->
        (render_trace o, Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json registry))
  in
  let t1, m1 = run 7 and t2, m2 = run 7 in
  Alcotest.(check string) "byte-identical trace" t1 t2;
  Alcotest.(check string) "byte-identical metrics export" m1 m2;
  let t3, _ = run 8 in
  check_bool "different seed, different trace" true (t1 <> t3)

let () =
  Alcotest.run "reliable"
    [
      ( "window",
        [
          Alcotest.test_case "bounded dedup window" `Quick test_window_bound;
          Alcotest.test_case "dedup combinator is bounded" `Quick
            test_dedup_is_bounded;
        ] );
      ( "net",
        [
          Alcotest.test_case "parse fault syntax" `Quick test_net_parse;
          Alcotest.test_case "validate fault configs" `Quick test_net_validate;
          Alcotest.test_case "parse transport fault syntax" `Quick
            test_net_parse_tfaults;
        ] );
      ( "transport",
        [
          Alcotest.test_case "topology parsing and mapping" `Quick
            test_topology_parse;
          Alcotest.test_case "transport faults require a topology" `Quick
            test_topology_required;
          Alcotest.test_case "wire FIFO: seqnos, reorder buffer, loss gaps"
            `Quick test_wire_fifo_unit;
          Alcotest.test_case "wire epochs: crash-restart resync" `Quick
            test_wire_epoch_unit;
          Alcotest.test_case "stall defers arrivals (head-of-line)" `Quick
            test_wire_stall_unit;
          Alcotest.test_case "FIFO within channel on every topology" `Slow
            test_fifo_within_channel;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "fault matrix, all protocols wrapped" `Slow
            test_fault_matrix_wrapped;
          Alcotest.test_case "topology matrix, transport faults" `Slow
            test_topology_matrix;
          Alcotest.test_case "unwrapped loses liveness" `Quick
            test_unwrapped_fails_liveness;
          Alcotest.test_case "retry cap gives up honestly" `Quick
            test_give_up_is_honest;
          Alcotest.test_case "partition overlapping crash on one link" `Quick
            test_combined_link_faults;
          Alcotest.test_case "transport partition: give-up, not silence"
            `Quick test_transport_partition_gives_up;
          Alcotest.test_case "partition mid-retransmit degrades gracefully"
            `Quick test_mid_retransmit_partition_degrades;
          Alcotest.test_case "recovery metrics" `Quick test_recovery_metrics;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "faulty runs are deterministic" `Quick
            test_fault_determinism;
          Alcotest.test_case "topology runs are deterministic" `Quick
            test_topology_determinism;
        ] );
    ]
