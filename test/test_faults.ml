open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

let ops = (Gen.uniform ~nprocs:3 ~nmsgs:40 ~seed:6).Gen.ops

let with_faults faults =
  { (Sim.default_config ~nprocs:3) with Sim.faults }

let test_no_faults_by_default () =
  let cfg = Sim.default_config ~nprocs:3 in
  check_bool "no drops" true (cfg.Sim.faults = Sim.no_faults)

let test_drops_break_liveness () =
  (* with heavy loss, some message never arrives; the harness reports a
     liveness failure, not a crash *)
  match
    Sim.execute
      (with_faults (Net.make ~drop_permille:300 ()))
      Tagless.factory ops
  with
  | Error e -> Alcotest.fail e
  | Ok o -> check_bool "not live" false o.Sim.all_delivered

let test_duplicates_break_naive_protocols () =
  (* the tagless protocol double-delivers a duplicated packet; the
     simulator flags the misbehaviour *)
  let found = ref false in
  List.iter
    (fun seed ->
      match
        Sim.execute
          {
            (with_faults (Net.make ~duplicate_permille:200 ()))
            with
            Sim.seed = seed;
          }
          Tagless.factory ops
      with
      | Error _ -> found := true
      | Ok _ -> ())
    (List.init 10 Fun.id);
  check_bool "double delivery detected" true !found

let test_dedup_restores_safety () =
  (* with the dedup combinator, duplication is harmless: live and correct *)
  List.iter
    (fun seed ->
      match
        Sim.execute
          {
            (with_faults (Net.make ~duplicate_permille:200 ()))
            with
            Sim.seed = seed;
          }
          (Wrap.dedup Tagless.factory) ops
      with
      | Error e -> Alcotest.fail e
      | Ok o -> check_bool "live under duplication" true o.Sim.all_delivered)
    (List.init 10 Fun.id)

let test_dedup_preserves_ordering_guarantees () =
  let causal_spec =
    Mo_core.Spec.make ~name:"causal" [ Mo_core.Catalog.causal_b2.Mo_core.Catalog.pred ]
  in
  List.iter
    (fun seed ->
      let cfg =
        {
          (with_faults (Net.make ~duplicate_permille:150 ()))
          with
          Sim.seed = seed;
        }
      in
      let r =
        Conformance.check_exn ~spec:causal_spec cfg
          (Wrap.dedup Causal_rst.factory) ops
      in
      check_bool "live" true r.Conformance.live;
      check_bool "causal under duplication" true
        (r.Conformance.spec_ok = Some true))
    (List.init 6 Fun.id)

let test_fault_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim.execute: fault probabilities out of range")
    (fun () ->
      ignore
        (Sim.execute
           (with_faults (Net.make ~drop_permille:(-1) ()))
           Tagless.factory ops));
  Alcotest.check_raises "too large"
    (Invalid_argument "Sim.execute: fault probabilities out of range")
    (fun () ->
      ignore
        (Sim.execute
           (with_faults (Net.make ~drop_permille:600 ~duplicate_permille:600 ()))
           Tagless.factory ops))

let test_drops_end_to_end () =
  (* every protocol, run through the full conformance harness under
     message loss: the harness must report (not crash) — liveness lost is
     a verdict, traffic accounting stays consistent, and the user-view
     run is withheld exactly when delivery is incomplete *)
  let protocols =
    [
      ("tagless", Tagless.factory);
      ("fifo", Fifo.factory);
      ("causal-rst", Causal_rst.factory);
      ("causal-ses", Causal_ses.factory);
      ("causal-bss", Causal_bss.factory);
      ("sync-token", Sync_token.factory);
      ("sync-priority", Sync_priority.factory);
      ("flush", Flush.factory);
      ("total-order", Total_order.factory);
    ]
  in
  let lossy = with_faults (Net.make ~drop_permille:150 ()) in
  List.iter
    (fun (name, factory) ->
      List.iter
        (fun seed ->
          match
            Conformance.check { lossy with Sim.seed } factory ops
          with
          | Error e ->
              Alcotest.fail
                (Printf.sprintf "%s seed %d crashed under drops: %s" name seed
                   e)
          | Ok r ->
              check_bool (name ^ " traffic consistent under drops") true
                r.Conformance.traffic_consistent;
              check_bool (name ^ " user view iff live") true
                (r.Conformance.live = (r.Conformance.outcome.Sim.run <> None)))
        [ 2; 5; 11 ])
    protocols

let test_drop_metrics_account_for_loss () =
  (* the observability layer under loss: spans of undelivered messages
     stay partial, the complete/incomplete split matches the simulator's
     delivery count, and every delivered message still has 4 events *)
  let lossy =
    {
      (with_faults (Net.make ~drop_permille:200 ())) with
      Sim.seed = 3;
    }
  in
  match Observe.run ~config:lossy Fifo.factory ops with
  | Error e -> Alcotest.fail e
  | Ok (registry, outcome) ->
      let m name =
        match Mo_obs.Metrics.value registry name with
        | Some v -> v
        | None -> Alcotest.fail ("metric missing: " ^ name)
      in
      let nmsgs = m "sim.msgs_total" and delivered = m "sim.delivered_total" in
      check_bool "loss actually occurred" true (delivered < nmsgs);
      check_bool "harness reports not live" false outcome.Sim.all_delivered;
      Alcotest.(check int) "complete = delivered" delivered
        (m "span.complete_total");
      Alcotest.(check int) "incomplete = lost" (nmsgs - delivered)
        (m "span.incomplete_total");
      check_bool "events bounded" true
        (let e = m "span.events_total" in
         e >= 4 * delivered && e <= 4 * nmsgs);
      Array.iter
        (fun sp ->
          if Mo_obs.Span.is_complete sp then
            check_bool "delivered span delays >= 0" true
              (match
                 (Mo_obs.Span.delivery_delay sp, Mo_obs.Span.inhibition sp)
               with
              | Some d, Some i -> d >= 0 && i >= 0
              | _ -> false)
          else
            check_bool "lost span has no delivery" true
              (Mo_obs.Span.delivery_delay sp = None))
        outcome.Sim.spans

let test_count_deliveries_wrapper () =
  let counters = ref [||] in
  match
    Sim.execute
      (Sim.default_config ~nprocs:3)
      (Wrap.count_deliveries Tagless.factory counters)
      ops
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      check_bool "all counted" true
        (Array.fold_left ( + ) 0 !counters = Array.length o.Sim.msgs)

let () =
  Alcotest.run "faults"
    [
      ( "unit",
        [
          Alcotest.test_case "no faults default" `Quick
            test_no_faults_by_default;
          Alcotest.test_case "drops break liveness" `Quick
            test_drops_break_liveness;
          Alcotest.test_case "duplicates caught" `Quick
            test_duplicates_break_naive_protocols;
          Alcotest.test_case "dedup restores safety" `Quick
            test_dedup_restores_safety;
          Alcotest.test_case "dedup preserves ordering" `Quick
            test_dedup_preserves_ordering_guarantees;
          Alcotest.test_case "fault validation" `Quick test_fault_validation;
          Alcotest.test_case "drops end-to-end (conformance)" `Quick
            test_drops_end_to_end;
          Alcotest.test_case "drop metrics account for loss" `Quick
            test_drop_metrics_account_for_loss;
          Alcotest.test_case "count deliveries" `Quick
            test_count_deliveries_wrapper;
        ] );
    ]
