(* The observability layer: metrics registry semantics, per-message
   lifecycle spans, and — the conformance+metrics satellite — the check
   that for every protocol a seeded run both satisfies its ordering spec
   and reports internally consistent costs, with the paper's
   tagless ⊂ tagged ⊂ general hierarchy visible in the numbers. *)

open Mo_core
open Mo_obs
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- registry units ---- *)

let test_counter_gauge () =
  let t = Metrics.create () in
  let c = Metrics.counter t "a.count" in
  Metrics.inc c;
  Metrics.add c 4;
  check_int "counter" 5 (Metrics.counter_value c);
  (* registration is idempotent: same metric behind the name *)
  Metrics.inc (Metrics.counter t "a.count");
  check_int "shared" 6 (Metrics.counter_value c);
  let g = Metrics.gauge t "a.depth" in
  Metrics.set g 3;
  Metrics.observe_max g 10;
  Metrics.observe_max g 2;
  check_int "gauge max" 10 (Metrics.gauge_value g);
  check_bool "lookup" true (Metrics.value t "a.count" = Some 6);
  check_bool "missing" true (Metrics.value t "nope" = None);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: \"a.count\" is already a counter")
    (fun () -> ignore (Metrics.gauge t "a.count"))

let test_histogram () =
  let t = Metrics.create () in
  let h = Metrics.histogram t ~buckets:[ 1; 10; 100 ] "lat" in
  List.iter (Metrics.observe h) [ 0; 1; 5; 10; 99; 1000 ];
  check_int "count" 6 (Metrics.hist_count h);
  check_int "sum" 1115 (Metrics.hist_sum h);
  check_int "max" 1000 (Metrics.hist_max h);
  check_bool "mean" true (abs_float (Metrics.hist_mean h -. 185.833) < 0.01);
  Alcotest.check_raises "bad buckets"
    (Invalid_argument "Metrics.histogram: buckets must be strictly increasing")
    (fun () -> ignore (Metrics.histogram t ~buckets:[ 5; 5 ] "bad"))

let test_json_export () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter t "z.last") 1;
  Metrics.set (Metrics.gauge t "a.first") 2;
  Metrics.observe (Metrics.histogram t ~buckets:[ 1; 2 ] "m.h") 3;
  let s = Jsonb.to_string (Metrics.to_json t) in
  (* sorted field order makes exports reproducible *)
  check_bool "sorted + complete" true
    (s
    = "{\"a.first\":{\"kind\":\"gauge\",\"value\":2},\"m.h\":{\"kind\":\
       \"histogram\",\"count\":1,\"sum\":3,\"max\":3,\"mean\":3.0,\
       \"buckets\":[{\"le\":1,\"n\":0},{\"le\":2,\"n\":0},{\"le\":\"+inf\",\
       \"n\":1}]},\"z.last\":{\"kind\":\"counter\",\"value\":1}}")

let test_span_durations () =
  let s =
    Span.make ~msg:0 ~src:1 ~dst:2 ~invoke:10 ~send:14 ~recv:20 ~deliver:23
  in
  check_bool "complete" true (Span.is_complete s);
  check_int "events" 4 (Span.events s);
  check_bool "inhibition" true (Span.inhibition s = Some 4);
  check_bool "delay" true (Span.delivery_delay s = Some 3);
  check_bool "flight" true (Span.in_flight s = Some 6);
  check_bool "latency" true (Span.latency s = Some 13);
  let cut =
    Span.make ~msg:1 ~src:0 ~dst:1 ~invoke:5 ~send:7 ~recv:Span.none
      ~deliver:Span.none
  in
  check_int "partial events" 2 (Span.events cut);
  check_bool "no delay" true (Span.delivery_delay cut = None);
  check_bool "inhibit still measured" true (Span.inhibition cut = Some 2)

(* ---- conformance + metrics consistency, per protocol ---- *)

let causal_spec = Spec.make ~name:"causal" [ Catalog.causal_b2.Catalog.pred ]
let fifo_spec = Spec.make ~name:"fifo" [ Catalog.fifo.Catalog.pred ]

let uniform = (Gen.uniform ~nprocs:4 ~nmsgs:60 ~seed:5).Gen.ops
let broadcast = (Gen.broadcast ~nprocs:4 ~nbcasts:15 ~seed:5).Gen.ops

let cases =
  [
    (Tagless.factory, None, uniform);
    (Fifo.factory, Some fifo_spec, uniform);
    (Causal_rst.factory, Some causal_spec, uniform);
    (Causal_ses.factory, Some causal_spec, uniform);
    (Causal_bss.factory, Some causal_spec, broadcast);
    (Sync_token.factory, Some causal_spec, uniform);
    (Sync_priority.factory, Some causal_spec, uniform);
    (Flush.factory, None, uniform);
    (Total_order.factory, Some causal_spec, broadcast);
  ]

let metric label registry name =
  match Metrics.value registry name with
  | Some v -> v
  | None -> Alcotest.fail (label ^ ": metric " ^ name ^ " not recorded")

let consistency_case (factory, spec, ops) seed =
  let label = Printf.sprintf "%s seed %d" factory.Protocol.proto_name seed in
  let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed = seed } in
  match Observe.run ~config:cfg factory ops with
  | Error e -> Alcotest.fail (label ^ ": " ^ e)
  | Ok (registry, outcome) ->
      let m = metric label registry in
      check_bool (label ^ " live") true outcome.Sim.all_delivered;
      (* the run satisfies the protocol's specification *)
      (match (spec, outcome.Sim.run) with
      | Some s, Some run ->
          check_bool
            (label ^ " spec ok")
            true
            (Spec.first_violation s (Mo_order.Run.to_abstract run) = None)
      | Some _, None -> Alcotest.fail (label ^ ": no user-view run")
      | None, _ -> ());
      (* class-hierarchy cost invariants (Theorem 1 as accounting) *)
      (match factory.Protocol.kind with
      | Protocol.Tagless ->
          check_int (label ^ " tagless pays no tag bytes") 0
            (m "sim.tag_bytes");
          check_int (label ^ " tagless sends no control") 0
            (m "sim.control_packets")
      | Protocol.Tagged ->
          check_int (label ^ " tagged sends no control") 0
            (m "sim.control_packets")
      | Protocol.General ->
          check_bool (label ^ " general uses control messages") true
            (m "sim.control_packets" > 0));
      (* span accounting: every delivered message has all four events *)
      let delivered = m "sim.delivered_total" in
      check_int (label ^ " all complete") delivered (m "span.complete_total");
      check_int
        (label ^ " events = 4 x delivered")
        (4 * delivered) (m "span.events_total");
      Array.iter
        (fun sp ->
          (match Span.inhibition sp with
          | Some d -> check_bool (label ^ " inhibition >= 0") true (d >= 0)
          | None -> Alcotest.fail (label ^ ": span missing send"));
          match Span.delivery_delay sp with
          | Some d -> check_bool (label ^ " delay >= 0") true (d >= 0)
          | None -> Alcotest.fail (label ^ ": span missing delivery"))
        outcome.Sim.spans;
      (* the protocol-layer (Wrap.instrument) and simulator-level (Observe)
         accounts must agree: same events, observed at different layers *)
      check_int (label ^ " user sends agree") (m "sim.user_packets")
        (m "proto.user_sends_total");
      check_int
        (label ^ " control sends agree")
        (m "sim.control_packets")
        (m "proto.control_sends_total");
      check_int (label ^ " tag bytes agree") (m "sim.tag_bytes")
        (m "proto.tag_bytes");
      check_int (label ^ " deliveries agree") delivered
        (m "proto.deliveries_total");
      check_int (label ^ " invokes = msgs") (m "sim.msgs_total")
        (m "proto.invokes_total");
      check_int (label ^ " pending watermark agrees") (m "sim.max_pending")
        (m "proto.max_pending")

let test_consistency_all_protocols () =
  List.iter
    (fun case -> List.iter (consistency_case case) [ 1; 7; 42 ])
    cases

let test_hierarchy_measured () =
  (* the acceptance shape: tagless tag bytes = 0 < tagged causal tag
     bytes; control messages only in the general class *)
  let run factory =
    match Observe.run factory uniform with
    | Ok (registry, _) -> registry
    | Error e -> Alcotest.fail e
  in
  let tagless = run Tagless.factory
  and rst = run Causal_rst.factory
  and sync = run Sync_token.factory in
  let v r n = Option.value ~default:(-1) (Metrics.value r n) in
  check_int "tagless tag bytes" 0 (v tagless "sim.tag_bytes");
  check_bool "tagged causal pays tags" true (v rst "sim.tag_bytes" > 0);
  check_int "tagged causal: no control" 0 (v rst "sim.control_packets");
  check_bool "sync-token pays control" true (v sync "sim.control_packets" > 0);
  check_bool "sync-token inhibits" true
    (match Metrics.find_histogram sync "span.inhibition_time" with
    | Some h -> Metrics.hist_sum h > 0
    | None -> false);
  check_int "tagged never inhibits sends" 0
    (match Metrics.find_histogram rst "span.inhibition_time" with
    | Some h -> Metrics.hist_sum h
    | None -> -1)

let test_deterministic_export () =
  let dump () =
    match Observe.run Causal_rst.factory uniform with
    | Ok (registry, _) -> Jsonb.to_string_pretty (Metrics.to_json registry)
    | Error e -> Alcotest.fail e
  in
  check_bool "same seed, same bytes" true (String.equal (dump ()) (dump ()))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter/gauge" `Quick test_counter_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "json export" `Quick test_json_export;
          Alcotest.test_case "span durations" `Quick test_span_durations;
        ] );
      ( "conformance+metrics",
        [
          Alcotest.test_case "all protocols consistent" `Quick
            test_consistency_all_protocols;
          Alcotest.test_case "hierarchy as measured costs" `Quick
            test_hierarchy_measured;
          Alcotest.test_case "deterministic export" `Quick
            test_deterministic_export;
        ] );
    ]
