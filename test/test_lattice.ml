(* The communication-model lattice, verified empirically.

   - every inclusion claimed by Lattice.leq holds run-for-run over the
     125,768-run standard universe (MO_LATTICE_DEEP=1 extends to the
     940,304-run deep tier), and the per-model member counts are pinned
     the way test_eval_fast.ml pins the limit-set cardinalities;
   - every strict non-inclusion is witnessed by a concrete separating
     run: a library of hand-built runs (overtakes, crowns, and the
     4-message causal-but-not-one-queue run) covers every ordered pair
     (a, b) with ¬(a ⊆ b);
   - the mask fast path (is_member) agrees with the witness-producing
     lt-based reference (check) on every run of the universe;
   - the Rsc / Causal / Async points agree run-for-run with
     Limits.is_sync / is_causal / is_async, and Ksync 1 with Rsc;
   - join/meet are the actual lub/glb over the finite point set and
     hasse lists exactly the covering pairs;
   - Modelcheck.placement verdicts are byte-identical at jobs 1/2/4 and
     recover the exact identities X_fifo = X_fifo-11 and
     X_causal_b2 = X_causal. *)

open Mo_core
open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let deep = Sys.getenv_opt "MO_LATTICE_DEEP" <> None

let models = Array.of_list (Lattice.points ~kmax:3 ())
let nm = Array.length models

(* every model of the sweep, plus the order-equal alias of Rsc *)
let models_plus = Array.append models [| Lattice.Ksync 1 |]

(* ---- the universe sweep ------------------------------------------- *)

type acc = {
  a_runs : int;
  a_members : int array; (* |X_M| per model *)
  a_incl : bool; (* every leq inclusion holds pointwise *)
  a_limits : bool; (* Rsc/Causal/Async agree with Limits, K1 with Rsc *)
  a_ref : bool; (* is_member = check on every run and model *)
}

let sweep ?(with_ref = true) sizes =
  let pool = Mo_par.Pool.create () in
  let init =
    {
      a_runs = 0;
      a_members = Array.make nm 0;
      a_incl = true;
      a_limits = true;
      a_ref = true;
    }
  in
  let step acc r =
    let mem = Array.map (fun m -> Lattice.is_member m r) models in
    let members = Array.copy acc.a_members in
    let incl = ref acc.a_incl in
    for i = 0 to nm - 1 do
      if mem.(i) then members.(i) <- members.(i) + 1;
      for j = 0 to nm - 1 do
        if Lattice.leq models.(i) models.(j) && mem.(i) && not mem.(j) then
          incl := false
      done
    done;
    let limits =
      acc.a_limits
      && mem.(0) = Limits.is_sync r
      && Lattice.is_member Lattice.Causal r = Limits.is_causal r
      && Lattice.is_member Lattice.Async r = Limits.is_async r
      && Lattice.is_member (Lattice.Ksync 1) r = mem.(0)
    in
    let refok =
      acc.a_ref
      && ((not with_ref)
         || Array.for_all2
              (fun m ok -> Result.is_ok (Lattice.check m r) = ok)
              models mem)
    in
    {
      a_runs = acc.a_runs + 1;
      a_members = members;
      a_incl = !incl;
      a_limits = limits;
      a_ref = refok;
    }
  in
  let merge x y =
    {
      a_runs = x.a_runs + y.a_runs;
      a_members = Array.init nm (fun i -> x.a_members.(i) + y.a_members.(i));
      a_incl = x.a_incl && y.a_incl;
      a_limits = x.a_limits && y.a_limits;
      a_ref = x.a_ref && y.a_ref;
    }
  in
  List.fold_left
    (fun acc (nprocs, nmsgs) ->
      merge acc
        (Enumerate.fold_abstracts_par ~pool ~nprocs ~nmsgs ~init ~f:step
           ~merge ()))
    init sizes

(* Pinned member counts over the standard universe: Rsc and Causal are
   the |X_sync| / |X_co| pins of test_eval_fast.ml, Fifo_11 is
   universe − fifo violations (125,768 − 58,768, the B15 pin), the rest
   pin the new models. Fifo_nn / Fifo_1n / Fifo_n1 coincide with Causal
   here and that is pinned deliberately: over runs whose cross-process
   edges are induced by real message chains, a causal violation always
   decomposes through a same-source and a same-destination overtake
   (walk the path off the sender / into the receiver), so the mailbox
   and n-1 points collapse onto Causal — they separate only on
   hand-built posets with primitive cross-process edges (below), and
   Fifo_nn separates from Causal first at (4,4), in the deep tier. *)
let pinned_members =
  [
    (Lattice.Rsc, 41_432);
    (Lattice.Ksync 2, 69_860);
    (Lattice.Ksync 3, 98_696);
    (Lattice.Fifo_nn, 63_364);
    (Lattice.Causal, 63_364);
    (Lattice.Fifo_1n, 63_364);
    (Lattice.Fifo_n1, 63_364);
    (Lattice.Fifo_11, 67_000);
    (Lattice.Async, 125_768);
  ]

let test_universe () =
  let total = sweep Modelcheck.universe_sizes in
  check_int "universe runs" 125_768 total.a_runs;
  check_bool "every claimed inclusion holds pointwise" true total.a_incl;
  check_bool "Rsc/Causal/Async/Ksync1 agree with Limits" true total.a_limits;
  check_bool "is_member = check on every run and model" true total.a_ref;
  Array.iteri
    (fun i m ->
      check_int
        ("members of " ^ Lattice.to_string m)
        (List.assoc m pinned_members)
        total.a_members.(i))
    models

let test_universe_deep () =
  if not deep then ()
  else begin
    let total = sweep ~with_ref:false Modelcheck.deep_sizes in
    check_int "deep runs" 940_304 total.a_runs;
    check_bool "inclusions hold over the deep tier" true total.a_incl;
    check_bool "Limits agreement over the deep tier" true total.a_limits
  end

(* ---- separating runs: every strict non-inclusion witnessed -------- *)

let mk ~nmsgs ~attrs edges =
  Run.Abstract.create_exn ~nmsgs
    ~attrs:
      (Array.of_list
         (List.map (fun (src, dst) -> Run.attrs_known ~src ~dst ()) attrs))
    edges

(* an overtaking pair on one channel: p0 sends both to p1 *)
let overtake_cc =
  mk ~nmsgs:2
    ~attrs:[ (0, 1); (0, 1) ]
    [ (Event.send 0, Event.send 1); (Event.deliver 1, Event.deliver 0) ]

(* same sender, different destinations *)
let overtake_src =
  mk ~nmsgs:2
    ~attrs:[ (0, 1); (0, 2) ]
    [ (Event.send 0, Event.send 1); (Event.deliver 1, Event.deliver 0) ]

(* different senders, same destination *)
let overtake_dst =
  mk ~nmsgs:2
    ~attrs:[ (0, 2); (1, 2) ]
    [ (Event.send 0, Event.send 1); (Event.deliver 1, Event.deliver 0) ]

(* crowns: x_i.s ▷ x_{i+1}.r around a cycle, disjoint process pairs *)
let crown k =
  mk ~nmsgs:k
    ~attrs:(List.init k (fun i -> (2 * i, (2 * i) + 1)))
    (List.init k (fun i -> (Event.send i, Event.deliver ((i + 1) mod k))))

let crown2 = crown 2
let crown3 = crown 3
let crown4 = crown 4

(* causally ordered but not realizable with one shared FIFO queue: the
   ss/rr edges alone form the 4-cycle m0 →ss m1 →rr m2 →ss m3 →rr m0,
   yet no message overtakes another (merging any two senders or
   receivers would reintroduce a causal violation, which is why the
   witness needs 4 messages across 4 processes — outside the universe
   tiers, hence hand-built) *)
let causal_not_nn =
  mk ~nmsgs:4
    ~attrs:[ (0, 3); (0, 2); (1, 2); (1, 3) ]
    [
      (Event.send 0, Event.send 1);
      (Event.deliver 1, Event.deliver 2);
      (Event.send 2, Event.send 3);
      (Event.deliver 3, Event.deliver 0);
    ]

let library =
  [
    ("overtake_cc", overtake_cc);
    ("overtake_src", overtake_src);
    ("overtake_dst", overtake_dst);
    ("crown2", crown2);
    ("crown3", crown3);
    ("crown4", crown4);
    ("causal_not_nn", causal_not_nn);
  ]

let test_separating_runs () =
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          if not (Lattice.leq a b) then
            check_bool
              (Printf.sprintf "separating run for %s ⊄ %s"
                 (Lattice.to_string a) (Lattice.to_string b))
              true
              (List.exists
                 (fun (_, w) ->
                   Lattice.is_member a w && not (Lattice.is_member b w))
                 library))
        models_plus)
    models_plus

(* the fast path and the witness-producing reference agree on the
   hand-built runs too (these have up to 8 processes, outside the
   enumerated tiers), and violations name real messages *)
let test_library_witnesses () =
  List.iter
    (fun (name, w) ->
      Array.iter
        (fun m ->
          let fast = Lattice.is_member m w in
          match Lattice.check m w with
          | Ok () -> check_bool (name ^ " ok agrees") true fast
          | Error v ->
              check_bool (name ^ " error agrees") false fast;
              check_bool (name ^ " witness nonempty") true (v.cycle <> []);
              List.iter
                (fun x ->
                  check_bool (name ^ " witness in range") true
                    (x >= 0 && x < Run.Abstract.nmsgs w))
                v.cycle)
        models_plus)
    library

(* ---- the order as data -------------------------------------------- *)

let all = Array.to_list models_plus

let test_order_axioms () =
  List.iter
    (fun a ->
      check_bool "reflexive" true (Lattice.leq a a);
      List.iter
        (fun b ->
          if Lattice.leq a b && Lattice.leq b a then
            check_bool "antisymmetric up to equal" true (Lattice.equal a b);
          List.iter
            (fun c ->
              if Lattice.leq a b && Lattice.leq b c then
                check_bool "transitive" true (Lattice.leq a c))
            all)
        all)
    all;
  check_bool "Ksync 1 = Rsc" true (Lattice.equal (Lattice.Ksync 1) Lattice.Rsc)

let test_join_meet () =
  let ub a b c = Lattice.leq a c && Lattice.leq b c in
  let lb a b c = Lattice.leq c a && Lattice.leq c b in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let j = Lattice.join a b and m = Lattice.meet a b in
          check_bool "join is an upper bound" true (ub a b j);
          check_bool "meet is a lower bound" true (lb a b m);
          List.iter
            (fun c ->
              if ub a b c then
                check_bool "join is the least upper bound" true
                  (Lattice.leq j c);
              if lb a b c then
                check_bool "meet is the greatest lower bound" true
                  (Lattice.leq c m))
            all)
        all)
    all

let test_hasse () =
  let pts = Lattice.points ~kmax:3 () in
  let strict a b = Lattice.leq a b && not (Lattice.leq b a) in
  let edges = Lattice.hasse ~kmax:3 () in
  check_int "hasse edge count" 10 (List.length edges);
  List.iter
    (fun (a, b) ->
      check_bool "hasse edge is strict" true (strict a b);
      check_bool "hasse edge is a cover" false
        (List.exists (fun c -> strict a c && strict c b) pts))
    edges;
  (* completeness: every strict pair is a path of covers, so in
     particular every cover appears *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if
            strict a b
            && not (List.exists (fun c -> strict a c && strict c b) pts)
          then
            check_bool "every cover listed" true
              (List.exists
                 (fun (x, y) -> Lattice.equal x a && Lattice.equal y b)
                 edges))
        pts)
    pts

let test_names () =
  List.iter
    (fun m ->
      check_bool
        ("roundtrip " ^ Lattice.to_string m)
        true
        (Lattice.of_string (Lattice.to_string m) = Some m))
    (all @ [ Lattice.Ksync 7 ]);
  check_bool "sync alias" true (Lattice.of_string "sync" = Some Lattice.Rsc);
  check_bool "mailbox alias" true
    (Lattice.of_string "mailbox" = Some Lattice.Fifo_1n);
  check_bool "unknown rejected" true (Lattice.of_string "fifo-2n" = None);
  check_bool "ksync0 rejected" true (Lattice.of_string "ksync0" = None)

(* ---- placement ---------------------------------------------------- *)

let place_repr (p : Modelcheck.placement) =
  let names ms = String.concat "," (List.map Lattice.to_string ms) in
  Format.asprintf "%d/%d|%s|%s|%s" p.Modelcheck.p_runs p.Modelcheck.p_spec
    (String.concat ";"
       (List.map
          (fun pl ->
            Format.asprintf "%s:%d:%d:%b:%b"
              (Lattice.to_string pl.Modelcheck.pl_model)
              pl.Modelcheck.pl_members pl.Modelcheck.pl_inter
              pl.Modelcheck.pl_model_in_spec pl.Modelcheck.pl_spec_in_model)
          p.Modelcheck.p_places))
    (names p.Modelcheck.p_sufficient)
    (names p.Modelcheck.p_guarantees)

let test_placement_exact () =
  (* X_fifo is exactly X_fifo-11, X_causal_b2 exactly X_causal: the
     placement must land both on the nose *)
  let pf =
    Modelcheck.placement ~sizes:Modelcheck.universe_sizes
      Catalog.fifo.Catalog.pred
  in
  check_int "fifo |X_B|" 67_000 pf.Modelcheck.p_spec;
  check_bool "fifo sufficient = [fifo-11]" true
    (pf.Modelcheck.p_sufficient = [ Lattice.Fifo_11 ]);
  check_bool "fifo guarantees = [fifo-11]" true
    (pf.Modelcheck.p_guarantees = [ Lattice.Fifo_11 ]);
  let eleven =
    List.find
      (fun pl -> Lattice.equal pl.Modelcheck.pl_model Lattice.Fifo_11)
      pf.Modelcheck.p_places
  in
  check_bool "X_fifo-11 ⊆ X_fifo" true eleven.Modelcheck.pl_model_in_spec;
  check_bool "X_fifo ⊆ X_fifo-11" true eleven.Modelcheck.pl_spec_in_model;
  check_int "fifo-11 members" 67_000 eleven.Modelcheck.pl_members;
  let pb =
    Modelcheck.placement ~sizes:Modelcheck.universe_sizes
      Catalog.causal_b2.Catalog.pred
  in
  check_int "causal_b2 |X_B|" 63_364 pb.Modelcheck.p_spec;
  (* over the realizable universe X_1n = X_n1 = X_nn = X_co (see the
     pin comment above), so the maximal models inside X_B are the two
     incomparable mailbox points and the minimal model containing it is
     the one-queue point — the honest empirical answer, not [Causal] *)
  check_bool "causal_b2 sufficient = [fifo-1n; fifo-n1]" true
    (pb.Modelcheck.p_sufficient = [ Lattice.Fifo_1n; Lattice.Fifo_n1 ]);
  check_bool "causal_b2 guarantees = [fifo-nn]" true
    (pb.Modelcheck.p_guarantees = [ Lattice.Fifo_nn ])

let test_placement_jobs_deterministic () =
  let reprs =
    List.map
      (fun jobs ->
        let pool = Mo_par.Pool.create ~jobs () in
        place_repr
          (Modelcheck.placement ~pool ~sizes:Modelcheck.universe_sizes
             Catalog.fifo.Catalog.pred))
      [ 1; 2; 4 ]
  in
  match reprs with
  | base :: rest ->
      List.iteri
        (fun i r ->
          check_bool
            (Printf.sprintf "placement at jobs run %d = jobs 1" i)
            true (r = base))
        rest
  | [] -> assert false

let () =
  Alcotest.run "lattice"
    [
      ( "universe",
        [
          Alcotest.test_case "inclusions + pins + Limits + reference" `Slow
            test_universe;
          Alcotest.test_case "deep tier (MO_LATTICE_DEEP)" `Slow
            test_universe_deep;
        ] );
      ( "separation",
        [
          Alcotest.test_case "every non-inclusion witnessed" `Quick
            test_separating_runs;
          Alcotest.test_case "library witnesses agree with fast path" `Quick
            test_library_witnesses;
        ] );
      ( "order",
        [
          Alcotest.test_case "reflexive transitive antisymmetric" `Quick
            test_order_axioms;
          Alcotest.test_case "join/meet are lub/glb" `Quick test_join_meet;
          Alcotest.test_case "hasse covers" `Quick test_hasse;
          Alcotest.test_case "names roundtrip" `Quick test_names;
        ] );
      ( "placement",
        [
          Alcotest.test_case "exact identities pinned" `Slow
            test_placement_exact;
          Alcotest.test_case "jobs-independent verdicts" `Slow
            test_placement_jobs_deterministic;
        ] );
    ]
