(* The canonicalization proof obligation, as executable properties:

   1. invariance — any bijective renaming of a predicate's message
      variables (plus any shuffle of its conjuncts and guards) produces
      the same canonical form, the same digest, and — since renaming is
      a graph isomorphism — the identical classification;
   2. soundness — canonicalization never changes what Classify says:
      verdict, cycle orders, necessity_exact and the simplification
      outcome all survive;
   3. idempotence — the canonical form is a fixpoint.

   The renaming-pair property runs ≥ 1000 random pairs (the acceptance
   bar for the decision cache: a digest collision between inequivalent
   predicates would poison it silently, a digest split between
   equivalent ones would only cost hit rate). *)

open Mo_core

let gen_pred rng =
  match Prop.int_range 0 3 rng with
  | 0 ->
      Mo_workload.Random_pred.predicate
        ~seed:(Prop.int_range 0 1_000_000 rng)
        ()
  | 1 ->
      Mo_workload.Random_pred.predicate ~max_vars:7 ~max_conjuncts:12
        ~seed:(Prop.int_range 0 1_000_000 rng)
        ()
  | 2 ->
      Mo_workload.Random_pred.guarded_predicate
        ~seed:(Prop.int_range 0 1_000_000 rng)
        ()
  | _ ->
      Mo_workload.Random_pred.cyclic_predicate
        ~nvars:(Prop.int_range 2 6 rng)
        ~seed:(Prop.int_range 0 1_000_000 rng)

(* a uniformly random permutation of 0..n-1 (Fisher–Yates) *)
let random_perm n rng =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Prop.int_range 0 i rng in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let shuffle l rng =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Prop.int_range 0 i rng in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* alpha-rename through a permutation, shuffling clause order too *)
let rename_pred p perm rng =
  let ep (e : Term.endpoint) =
    { Term.var = perm.(e.Term.var); point = e.Term.point }
  in
  let conjuncts =
    List.map
      (fun (c : Term.conjunct) ->
        Term.(ep c.Term.before @> ep c.Term.after))
      (Forbidden.conjuncts p)
  in
  let guards =
    List.map
      (fun (g : Term.guard) ->
        match g with
        | Term.Same_src (x, y) -> Term.Same_src (perm.(x), perm.(y))
        | Term.Same_dst (x, y) -> Term.Same_dst (perm.(x), perm.(y))
        | Term.Color_is (x, c) -> Term.Color_is (perm.(x), c))
      (Forbidden.guards p)
  in
  Forbidden.make ~nvars:(Forbidden.nvars p)
    ~guards:(shuffle guards rng)
    (shuffle conjuncts rng)

let gen_renaming_pair rng =
  let p = gen_pred rng in
  let perm = random_perm (Forbidden.nvars p) rng in
  (p, rename_pred p perm rng)

let classification_fingerprint p =
  let r = Classify.classify p in
  ( r.Classify.verdict,
    r.Classify.orders,
    r.Classify.necessity_exact,
    r.Classify.simplification )

let pp_pair (p, q) =
  Printf.sprintf "%s  ~  %s" (Forbidden.to_string p)
    (Forbidden.to_string q)

let renaming_invariance (p, q) =
  String.equal (Canon.digest p) (Canon.digest q)
  && Canon.equal p q
  && Forbidden.equal (Canon.predicate p) (Canon.predicate q)
  && classification_fingerprint p = classification_fingerprint q

let classify_preserved p =
  classification_fingerprint p = classification_fingerprint (Canon.predicate p)

let idempotent p =
  let c = Canon.predicate p in
  Forbidden.equal c (Canon.predicate c)
  && String.equal (Canon.digest p) (Canon.digest c)

(* hand-written sanity anchors *)

let pred = Parse.predicate_exn

let test_known_pairs () =
  let equal_digests a b =
    Alcotest.(check bool)
      (a ^ " ~ " ^ b) true
      (String.equal (Canon.digest (pred a)) (Canon.digest (pred b)))
  in
  (* variable renaming *)
  equal_digests "x.s < y.s & y.r < x.r" "b.s < a.s & a.r < b.r";
  (* conjunct reordering *)
  equal_digests "x.s < y.s & y.r < x.r" "y.r < x.r & x.s < y.s";
  (* symmetric guard written both ways *)
  equal_digests "x.s < y.r & src(x) = src(y)" "x.s < y.r & src(y) = src(x)";
  (* different specifications stay apart *)
  Alcotest.(check bool)
    "fifo is not causal" false
    (String.equal
       (Canon.digest (pred "x.s < y.s & y.r < x.r & src(x) = src(y)"))
       (Canon.digest (pred "x.s < y.s & y.r < x.r")))

(* regression: the permutation-search budget is a product of class
   factorials, which overflowed the native int once a symmetric class
   passed 20 variables — the negative budget slipped under [max_search]
   and the search tried to enumerate 21! orders. A fully symmetric
   22-variable predicate (one signature class: a conjunct cycle plus
   identical color guards) must take the refinement-order fallback and
   return immediately. *)
let test_symmetric_budget_overflow () =
  let nvars = 22 in
  let p =
    Forbidden.make ~nvars
      ~guards:(List.init nvars (fun v -> Term.Color_is (v, 1)))
      (List.init nvars (fun v ->
           Term.(
             { var = v; point = S }
             @> { var = (v + 1) mod nvars; point = R })))
  in
  Alcotest.(check string)
    "digest is deterministic" (Canon.digest p) (Canon.digest p);
  Alcotest.(check bool)
    "truncated canonicalization is a fixpoint" true
    (Canon.equal p (Canon.predicate p))

let test_spec_canon () =
  let a = pred "x.s < y.s & y.r < x.r" in
  let a' = pred "p.s < q.s & q.r < p.r" in
  let b = pred "x.s < y.r & y.s < x.r" in
  let s = Spec.make ~name:"s" [ a; b; a' ] in
  let canonical = Canon.spec s in
  Alcotest.(check int)
    "alpha-duplicates collapse" 2
    (List.length canonical.Spec.predicates);
  let reordered = Spec.make ~name:"s" [ b; a'; a ] in
  Alcotest.(check string)
    "member order is irrelevant" (Canon.spec_digest s)
    (Canon.spec_digest reordered)

let () =
  Alcotest.run "canon"
    [
      ( "properties",
        [
          Alcotest.test_case "renaming pairs: digest + classify" `Quick
            (Prop.test ~count:1200 ~seed:42
               ~name:"alpha-renaming invariance" gen_renaming_pair
               ~pp:pp_pair renaming_invariance);
          Alcotest.test_case "classification preserved" `Quick
            (Prop.test ~count:400 ~seed:7 ~name:"classify(canon) = classify"
               gen_pred
               ~pp:Forbidden.to_string classify_preserved);
          Alcotest.test_case "idempotent" `Quick
            (Prop.test ~count:400 ~seed:11 ~name:"canon is a fixpoint"
               gen_pred
               ~pp:Forbidden.to_string idempotent);
        ] );
      ( "unit",
        [
          Alcotest.test_case "known pairs" `Quick test_known_pairs;
          Alcotest.test_case "symmetric budget overflow" `Quick
            test_symmetric_budget_overflow;
          Alcotest.test_case "spec canonicalization" `Quick test_spec_canon;
        ] );
    ]
