(* The parallel engine's contract is determinism: for any job count and
   chunk size, every Pool combinator returns byte-identical results, and
   the ported hot paths (universe enumeration, schedule exploration, the
   fault matrix, metrics aggregation) agree with their sequential
   references. These tests pin that contract, so they are meaningful even
   on a single-core host — on a multicore one they additionally exercise
   real work stealing. *)

open Mo_core
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let pool_of jobs = Mo_par.Pool.create ~jobs ()
let job_counts = [ 1; 2; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* Pool combinators                                                    *)

let test_pool_map_identity () =
  let n = 103 in
  let f i = (i * i) - (3 * i) in
  let expected = Array.init n f in
  List.iter
    (fun jobs ->
      let pool = pool_of jobs in
      check_int "jobs clamp" (max 1 jobs) (Mo_par.Pool.jobs pool);
      Alcotest.(check (array int))
        (Printf.sprintf "map at %d jobs" jobs)
        expected
        (Mo_par.Pool.map pool n ~f);
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "map at %d jobs, chunk %d" jobs chunk)
            expected
            (Mo_par.Pool.map pool ~chunk n ~f))
        [ 1; 2; 5; 64; 1000 ])
    job_counts;
  Alcotest.(check (array int))
    "empty map" [||]
    (Mo_par.Pool.map (pool_of 4) 0 ~f)

let test_pool_fold_identity () =
  (* a deliberately non-commutative merge: string concatenation. The
     pool must merge in index order regardless of which domain computed
     what, so the folded string is identical everywhere. *)
  let n = 57 in
  let f i = Printf.sprintf "[%d]" i in
  let expected = String.concat "" (List.init n f) in
  List.iter
    (fun jobs ->
      check_string
        (Printf.sprintf "ordered fold at %d jobs" jobs)
        expected
        (Mo_par.Pool.fold (pool_of jobs) n ~f ~merge:( ^ ) ~init:""))
    job_counts

let test_pool_errors () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Mo_par.Pool.create: jobs must be >= 1") (fun () ->
      ignore (Mo_par.Pool.create ~jobs:0 ()));
  (* a worker exception aborts the whole map and is re-raised in the
     caller, at every job count *)
  List.iter
    (fun jobs ->
      match
        Mo_par.Pool.map (pool_of jobs) 20 ~f:(fun i ->
            if i = 13 then failwith "boom" else i)
      with
      | _ -> Alcotest.fail "expected the worker failure to propagate"
      | exception Failure m -> check_string "propagated failure" "boom" m)
    job_counts

let test_seeded_streams () =
  (* per-stream PRNGs: distinct streams differ, same stream reproduces *)
  let draw ~seed ~stream =
    let st = Mo_par.rng ~seed ~stream in
    List.init 8 (fun _ -> Random.State.bits st)
  in
  check_bool "same stream reproduces" true
    (draw ~seed:1 ~stream:3 = draw ~seed:1 ~stream:3);
  check_bool "streams are distinct" true
    (draw ~seed:1 ~stream:0 <> draw ~seed:1 ~stream:1);
  check_bool "seeds are distinct" true
    (draw ~seed:1 ~stream:0 <> draw ~seed:2 ~stream:0)

(* ------------------------------------------------------------------ *)
(* Universe enumeration and the Lemma 3 identities                     *)

let test_universe_counts_all_jobs () =
  (* the paper's pinned cardinalities, at every job count *)
  List.iter
    (fun jobs ->
      let c =
        Modelcheck.count ~pool:(pool_of jobs)
          ~sizes:Modelcheck.standard_sizes ()
      in
      let label = Printf.sprintf "at %d jobs" jobs in
      check_int ("|X_async| " ^ label) 2804 c.Modelcheck.runs;
      check_int ("|X_co| " ^ label) 1840 c.Modelcheck.causal;
      check_int ("|X_sync| " ^ label) 1424 c.Modelcheck.sync)
    job_counts

let test_universe_verdict () =
  let v =
    Modelcheck.verify ~pool:(pool_of 4) ~sizes:Modelcheck.standard_sizes ()
  in
  check_bool "subset chain" true v.Modelcheck.subset_chain;
  check_bool "lemma 3.2 equivalence" true v.Modelcheck.lemma32_equiv;
  check_bool "lemma 3.2 exactness" true v.Modelcheck.lemma32_exact;
  check_bool "lemma 3.3 unsatisfiable" true v.Modelcheck.lemma33_unsat;
  check_bool "ok" true (Modelcheck.ok v)

(* ------------------------------------------------------------------ *)
(* Parallel schedule exploration                                       *)

let explore_protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("sync-token", Sync_token.factory);
  ]

let crossing_ops =
  [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:0 ~src:1 ~dst:0 () ]

let same_channel_ops =
  [
    Sim.op ~at:0 ~src:0 ~dst:1 ();
    Sim.op ~at:1 ~src:0 ~dst:1 ();
    Sim.op ~at:2 ~src:1 ~dst:0 ();
  ]

let views_fingerprint ~pool ~nprocs factory ops =
  match Explore.distinct_user_views_par ~pool ~nprocs factory ops with
  | Error e -> Alcotest.fail e
  | Ok (views, stats) ->
      ( List.map Explore.view_key views,
        stats.Explore.executions,
        stats.Explore.truncated )

let test_explore_par_matches_sequential () =
  List.iter
    (fun (pname, factory) ->
      List.iter
        (fun (wname, ops) ->
          let seq_views =
            match Explore.distinct_user_views ~nprocs:2 factory ops with
            | Ok vs -> List.map Explore.view_key vs
            | Error e -> Alcotest.fail e
          in
          let seq_stats =
            match
              Explore.explore ~nprocs:2 factory ops ~on_outcome:(fun _ -> ())
            with
            | Ok s -> s
            | Error e -> Alcotest.fail e
          in
          List.iter
            (fun jobs ->
              let label = Printf.sprintf "%s/%s at %d jobs" pname wname jobs in
              let views, execs, truncated =
                views_fingerprint ~pool:(pool_of jobs) ~nprocs:2 factory ops
              in
              check_bool (label ^ ": views identical") true (views = seq_views);
              check_int (label ^ ": execution count")
                seq_stats.Explore.executions execs;
              check_bool (label ^ ": not truncated") false truncated)
            job_counts)
        [ ("crossing", crossing_ops); ("same-channel", same_channel_ops) ])
    explore_protocols

let test_explore_par_budget () =
  (* the shared budget truncates at exactly the sequential count *)
  let ops = same_channel_ops in
  match
    Explore.explore_par ~pool:(pool_of 4) ~max_executions:10 ~nprocs:2
      Fifo.factory ops ~init:0
      ~f:(fun acc _ -> acc + 1)
      ~merge:( + ) ()
  with
  | Error e -> Alcotest.fail e
  | Ok (folded, stats) ->
      check_int "exactly the budget was folded" 10 folded;
      check_int "stats agree" 10 stats.Explore.executions;
      check_bool "truncated" true stats.Explore.truncated

let test_explore_par_misbehaviour () =
  (* a protocol that delivers a message it never received must be
     reported as a protocol error, not crash the pool *)
  let broken =
    {
      Protocol.proto_name = "broken";
      kind = Protocol.Tagged;
      make =
        (fun ~nprocs:_ ~me:_ ->
          {
            Protocol.on_invoke =
              (fun ~now:_ i -> [ Protocol.Deliver i.Protocol.id ]);
            on_packet = (fun ~now:_ ~from:_ _ -> []);
            on_timer = (fun ~now:_ ~key:_ -> []);
            pending_depth = (fun () -> 0);
          });
    }
  in
  match
    Explore.explore_par ~pool:(pool_of 2) ~nprocs:2 broken crossing_ops
      ~init:() ~f:(fun () _ -> ()) ~merge:(fun () () -> ()) ()
  with
  | Ok _ -> Alcotest.fail "expected a misbehaviour"
  | Error e -> check_bool "diagnostic mentions the delivery" true
                 (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* Fault-matrix sharding                                               *)

let test_fault_matrix_jobs_agree () =
  (* a slice of the conformance grid: verdicts must be identical when
     the cells are run sequentially and on a 4-worker pool *)
  let cells =
    Array.of_list
      [
        ("fifo", Fifo.factory, 1);
        ("fifo", Fifo.factory, 2);
        ("causal-rst", Causal_rst.factory, 1);
        ("causal-rst", Causal_rst.factory, 2);
        ("sync-token", Sync_token.factory, 1);
        ("tagless", Tagless.factory, 3);
      ]
  in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:6).Gen.ops in
  let faults = Net.make ~drop_permille:150 () in
  let run_cell (_, factory, seed) =
    let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed; faults } in
    let r = Conformance.check_exn cfg (Wrap.reliable factory) ops in
    (r.Conformance.live, r.Conformance.traffic_consistent)
  in
  let verdicts_at jobs =
    Mo_par.Pool.map (pool_of jobs) (Array.length cells) ~f:(fun i ->
        run_cell cells.(i))
  in
  let v1 = verdicts_at 1 in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "verdicts at %d jobs match sequential" jobs)
        true
        (verdicts_at jobs = v1))
    [ 2; 4 ];
  Array.iteri
    (fun i (live, traffic) ->
      let name, _, seed = cells.(i) in
      check_bool (Printf.sprintf "%s seed %d live" name seed) true live;
      check_bool
        (Printf.sprintf "%s seed %d traffic" name seed)
        true traffic)
    v1

(* ------------------------------------------------------------------ *)
(* Metrics merging                                                     *)

let fill_registry ~scale r =
  let c = Mo_obs.Metrics.counter r "m.count" in
  for _ = 1 to 3 * scale do
    Mo_obs.Metrics.inc c
  done;
  let g = Mo_obs.Metrics.gauge r "m.depth" in
  Mo_obs.Metrics.set g (10 * scale);
  let h = Mo_obs.Metrics.histogram r ~buckets:[ 1; 10; 100 ] "m.lat" in
  List.iter
    (fun v -> Mo_obs.Metrics.observe h (v * scale))
    [ 1; 5; 50; 200 ]

let test_metrics_merge () =
  let a = Mo_obs.Metrics.create () and b = Mo_obs.Metrics.create () in
  fill_registry ~scale:1 a;
  fill_registry ~scale:2 b;
  (* merge is commutative on the exported values *)
  let merged_ab =
    let into = Mo_obs.Metrics.create () in
    Mo_obs.Metrics.merge ~into a;
    Mo_obs.Metrics.merge ~into b;
    Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json into)
  in
  let merged_ba =
    let into = Mo_obs.Metrics.create () in
    Mo_obs.Metrics.merge ~into b;
    Mo_obs.Metrics.merge ~into a;
    Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json into)
  in
  check_string "merge order does not matter" merged_ab merged_ba;
  let into = Mo_obs.Metrics.create () in
  Mo_obs.Metrics.merge ~into a;
  Mo_obs.Metrics.merge ~into b;
  check_bool "counters add" true
    (Mo_obs.Metrics.value into "m.count" = Some 9);
  check_bool "gauges keep the high watermark" true
    (Mo_obs.Metrics.value into "m.depth" = Some 20);
  (match Mo_obs.Metrics.find_histogram into "m.lat" with
  | None -> Alcotest.fail "merged histogram missing"
  | Some h ->
      check_int "histogram counts add" 8 (Mo_obs.Metrics.hist_count h);
      check_int "histogram sums add" ((1 + 5 + 50 + 200) * 3)
        (Mo_obs.Metrics.hist_sum h));
  (* merging a registry into itself is a programming error *)
  Alcotest.check_raises "self merge rejected"
    (Invalid_argument "Metrics.merge: cannot merge a registry into itself")
    (fun () -> Mo_obs.Metrics.merge ~into:a a);
  (* kind mismatches are errors, not silent corruption *)
  let x = Mo_obs.Metrics.create () and y = Mo_obs.Metrics.create () in
  ignore (Mo_obs.Metrics.counter x "clash");
  ignore (Mo_obs.Metrics.gauge y "clash");
  check_bool "kind mismatch raises" true
    (match Mo_obs.Metrics.merge ~into:x y with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_metrics_merge_parallel () =
  (* the aggregation pattern the engine uses: one registry per worker,
     merged at join — export equals a single-registry sequential run *)
  let expected =
    let r = Mo_obs.Metrics.create () in
    for scale = 1 to 8 do
      fill_registry ~scale r
    done;
    Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json r)
  in
  List.iter
    (fun jobs ->
      let registries =
        Mo_par.Pool.map (pool_of jobs) 8 ~f:(fun i ->
            let r = Mo_obs.Metrics.create () in
            fill_registry ~scale:(i + 1) r;
            r)
      in
      let into = Mo_obs.Metrics.create () in
      Array.iter (fun r -> Mo_obs.Metrics.merge ~into r) registries;
      check_string
        (Printf.sprintf "merged export at %d jobs" jobs)
        expected
        (Mo_obs.Jsonb.to_string (Mo_obs.Metrics.to_json into)))
    job_counts

(* ------------------------------------------------------------------ *)
(* Jsonb parsing (the bench-regression gate reads BENCH_*.json)        *)

let test_jsonb_roundtrip () =
  let samples =
    [
      Mo_obs.Jsonb.Null;
      Mo_obs.Jsonb.Bool true;
      Mo_obs.Jsonb.Int (-42);
      Mo_obs.Jsonb.Float 2.5;
      Mo_obs.Jsonb.String "he \"said\"\n\ttab\\slash";
      Mo_obs.Jsonb.List
        [ Mo_obs.Jsonb.Int 1; Mo_obs.Jsonb.List []; Mo_obs.Jsonb.Obj [] ];
      Mo_obs.Jsonb.Obj
        [
          ("a", Mo_obs.Jsonb.Int 1);
          ("nested", Mo_obs.Jsonb.Obj [ ("b", Mo_obs.Jsonb.Bool false) ]);
          ("xs", Mo_obs.Jsonb.List [ Mo_obs.Jsonb.Float 0.125 ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let compact = Mo_obs.Jsonb.to_string j in
      (match Mo_obs.Jsonb.of_string compact with
      | Ok j' ->
          check_string "compact round trip" compact (Mo_obs.Jsonb.to_string j')
      | Error e -> Alcotest.fail (compact ^ ": " ^ e));
      match Mo_obs.Jsonb.of_string (Mo_obs.Jsonb.to_string_pretty j) with
      | Ok j' ->
          check_string "pretty round trip" compact (Mo_obs.Jsonb.to_string j')
      | Error e -> Alcotest.fail ("pretty: " ^ e))
    samples

let test_jsonb_errors () =
  List.iter
    (fun bad ->
      match Mo_obs.Jsonb.of_string bad with
      | Ok _ -> Alcotest.fail ("parser should reject: " ^ bad)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "tru";
      "1 2";
      "\"unterminated";
      "{\"a\":1,}";
      "nan";
    ];
  match Mo_obs.Jsonb.of_string "  {\"a\" : [1, -2.5e1, \"x\"]}  " with
  | Ok j ->
      check_string "whitespace tolerated" "{\"a\":[1,-25.0,\"x\"]}"
        (Mo_obs.Jsonb.to_string j)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map is the identity schedule" `Quick
            test_pool_map_identity;
          Alcotest.test_case "fold merges in index order" `Quick
            test_pool_fold_identity;
          Alcotest.test_case "errors propagate" `Quick test_pool_errors;
          Alcotest.test_case "seeded per-stream rngs" `Quick
            test_seeded_streams;
        ] );
      ( "universe",
        [
          Alcotest.test_case "pinned counts at every job count" `Quick
            test_universe_counts_all_jobs;
          Alcotest.test_case "lemma identities verified in parallel" `Quick
            test_universe_verdict;
        ] );
      ( "explore",
        [
          Alcotest.test_case "parallel views match sequential" `Slow
            test_explore_par_matches_sequential;
          Alcotest.test_case "shared budget truncates exactly" `Quick
            test_explore_par_budget;
          Alcotest.test_case "misbehaviour is reported" `Quick
            test_explore_par_misbehaviour;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "verdicts identical across job counts" `Slow
            test_fault_matrix_jobs_agree;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "merge semantics" `Quick test_metrics_merge;
          Alcotest.test_case "per-worker registries merge to sequential"
            `Quick test_metrics_merge_parallel;
        ] );
      ( "jsonb",
        [
          Alcotest.test_case "parser round trips" `Quick test_jsonb_roundtrip;
          Alcotest.test_case "parser rejects malformed input" `Quick
            test_jsonb_errors;
        ] );
    ]
