open Mo_order
open Mo_protocol
open Mo_workload

let check_bool = Alcotest.(check bool)

let grouping (o : Sim.outcome) =
  { Broadcast_props.group_of = (fun id -> o.Sim.groups.(id)) }

let run_broadcasts factory ~seed ~nbcasts =
  let cfg = { (Sim.default_config ~nprocs:4) with Sim.seed; jitter = 20 } in
  let ops =
    (* broadcasts packed tightly so reordering pressure is real *)
    List.map
      (fun (op : Sim.op) -> { op with Sim.at = op.Sim.at / 3 })
      (Gen.broadcast ~nprocs:4 ~nbcasts ~seed).Gen.ops
  in
  Sim.execute cfg factory ops

let seeds = List.init 12 (fun i -> (i * 7) + 1)

let test_total_order_protocol_safe () =
  List.iter
    (fun seed ->
      match run_broadcasts Total_order.factory ~seed ~nbcasts:15 with
      | Error e -> Alcotest.fail e
      | Ok o -> (
          check_bool "live" true o.Sim.all_delivered;
          match o.Sim.run with
          | None -> Alcotest.fail "no run"
          | Some r ->
              check_bool "total order" true
                (Broadcast_props.total_order r (grouping o));
              check_bool "causal too" true
                (Broadcast_props.causal_broadcast r (grouping o))))
    seeds

let test_control_overhead () =
  match run_broadcasts Total_order.factory ~seed:3 ~nbcasts:10 with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* two control messages per broadcast: req + grant *)
      Alcotest.(check int) "2 per broadcast" 20 o.Sim.stats.Sim.control_packets

let test_bss_not_total_order () =
  (* BSS guarantees causal but not total order: concurrent broadcasts can
     be delivered in different orders at different processes *)
  let violates seed =
    match run_broadcasts Causal_bss.factory ~seed ~nbcasts:15 with
    | Error _ -> false
    | Ok o -> (
        match o.Sim.run with
        | None -> false
        | Some r ->
            Broadcast_props.causal_broadcast r (grouping o)
            && not (Broadcast_props.total_order r (grouping o)))
  in
  check_bool "bss causal but unordered under some seed" true
    (List.exists violates (List.init 30 Fun.id))

let test_tagless_not_causal_broadcast () =
  let violates seed =
    match run_broadcasts Tagless.factory ~seed ~nbcasts:15 with
    | Error _ -> false
    | Ok o -> (
        match o.Sim.run with
        | None -> false
        | Some r -> not (Broadcast_props.causal_broadcast r (grouping o)))
  in
  check_bool "tagless violates causal broadcast under some seed" true
    (List.exists violates (List.init 30 Fun.id))

let test_delivery_order_helper () =
  match run_broadcasts Total_order.factory ~seed:5 ~nbcasts:8 with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.Sim.run with
      | None -> Alcotest.fail "no run"
      | Some r ->
          (* each process delivers every group except its own broadcasts,
             each group exactly once *)
          let all_groups =
            List.sort_uniq compare (Array.to_list o.Sim.groups)
          in
          List.iteri
            (fun p order ->
              let expected =
                List.filter
                  (fun g ->
                    (* p receives group g iff g was not originated by p *)
                    Array.exists
                      (fun id ->
                        o.Sim.groups.(id) = g && snd o.Sim.msgs.(id) = p)
                      (Array.init (Array.length o.Sim.msgs) Fun.id))
                  all_groups
              in
              check_bool
                (Printf.sprintf "P%d delivers its groups once each" p)
                true
                (List.sort compare order = List.sort compare expected))
            (List.init 4 (fun p ->
                 Broadcast_props.delivery_order r (grouping o) p)))

let test_ticket_order_extends_causality () =
  (* read tickets back and check: if a send of g happens-before a send of
     h in the user view, ticket(g) < ticket(h) *)
  let tickets = Hashtbl.create 32 in
  let wrap (inner : Protocol.factory) =
    {
      inner with
      Protocol.make =
        (fun ~nprocs ~me ->
          let i = inner.Protocol.make ~nprocs ~me in
          {
            Protocol.on_invoke = i.Protocol.on_invoke;
            on_packet =
              (fun ~now ~from packet ->
                (match packet with
                | Message.User { id; tag = Message.Ticket t; _ } ->
                    Hashtbl.replace tickets id t
                | _ -> ());
                i.Protocol.on_packet ~now ~from packet);
            on_timer = i.Protocol.on_timer;
            pending_depth = i.Protocol.pending_depth;
          });
    }
  in
  match
    let cfg = { (Sim.default_config ~nprocs:3) with Sim.seed = 2 } in
    let ops = (Gen.broadcast ~nprocs:3 ~nbcasts:10 ~seed:2).Gen.ops in
    Sim.execute cfg (wrap Total_order.factory) ops
  with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.Sim.run with
      | None -> Alcotest.fail "no run"
      | Some r ->
          for m1 = 0 to Run.nmsgs r - 1 do
            for m2 = 0 to Run.nmsgs r - 1 do
              if
                o.Sim.groups.(m1) <> o.Sim.groups.(m2)
                && Run.lt r (Event.send m1) (Event.send m2)
              then
                match
                  (Hashtbl.find_opt tickets m1, Hashtbl.find_opt tickets m2)
                with
                | Some t1, Some t2 ->
                    check_bool "tickets extend causality" true (t1 < t2)
                | _ -> Alcotest.fail "missing ticket"
            done
          done)

let () =
  Alcotest.run "total_order"
    [
      ( "unit",
        [
          Alcotest.test_case "protocol safe" `Slow
            test_total_order_protocol_safe;
          Alcotest.test_case "control overhead" `Quick test_control_overhead;
          Alcotest.test_case "bss not total order" `Quick
            test_bss_not_total_order;
          Alcotest.test_case "tagless not causal broadcast" `Quick
            test_tagless_not_causal_broadcast;
          Alcotest.test_case "delivery order helper" `Quick
            test_delivery_order_helper;
          Alcotest.test_case "tickets extend causality" `Quick
            test_ticket_order_extends_causality;
        ] );
    ]
