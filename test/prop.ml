(* A minimal in-repo property-test harness: a seeded generator plus a
   counting runner, stdlib-only. Each case draws from a PRNG derived
   deterministically from (seed, case index), so a failure report names a
   case index that reproduces in isolation and runs are identical across
   machines. Kept deliberately tiny — qcheck exists in the test stack, but
   the protocol properties below want exact seed control and zero
   shrinking magic. *)

exception Failed of string

type 'a gen = Random.State.t -> 'a

(* independent per-case state: reseeding with [| seed; i |] decorrelates
   neighbouring cases far better than drawing them from one stream *)
let case_rng ~seed i = Random.State.make [| seed; i; 0x9e3779b9 |]

let default_count = 200

let check ?(count = default_count) ?(seed = 42) ~name (gen : 'a gen)
    ?(pp = fun _ -> "<no printer>") (prop : 'a -> bool) =
  for i = 0 to count - 1 do
    let rng = case_rng ~seed i in
    let x = gen rng in
    let ok =
      try prop x
      with e ->
        raise
          (Failed
             (Printf.sprintf "%s: case %d (seed %d) raised %s on %s" name i
                seed (Printexc.to_string e) (pp x)))
    in
    if not ok then
      raise
        (Failed
           (Printf.sprintf "%s: case %d (seed %d) falsified by %s" name i
              seed (pp x)))
  done

(* runner bridging into alcotest's [test_case] shape without depending on
   it: alcotest reports any exception, including [Failed], as a failure
   with its message *)
let test ?count ?seed ~name gen ?pp prop () =
  check ?count ?seed ~name gen ?pp prop

(* ---- generator combinators (just the ones the suite needs) ---- *)

let int_range lo hi rng =
  if hi < lo then invalid_arg "Prop.int_range";
  lo + Random.State.int rng (hi - lo + 1)

let oneof (xs : 'a list) rng = List.nth xs (Random.State.int rng (List.length xs))

(* weighted choice: [frequency [(3, a); (1, b)]] draws [a] three times as
   often as [b]; weights must be positive *)
let frequency (xs : (int * 'a gen) list) rng =
  let total = List.fold_left (fun s (w, _) -> s + w) 0 xs in
  if total <= 0 then invalid_arg "Prop.frequency";
  let k = Random.State.int rng total in
  let rec pick k = function
    | [] -> invalid_arg "Prop.frequency"
    | (w, g) :: rest -> if k < w then g else pick (k - w) rest
  in
  (pick k xs) rng

let pair g1 g2 rng =
  let a = g1 rng in
  let b = g2 rng in
  (a, b)

let map f g rng = f (g rng)
