(* Differential tests for the PR-5 kernel: the incremental backtracking
   enumerator, the mask/bitset compiled evaluator, and the fast limit
   checks must be indistinguishable from their reference counterparts.

   - enumerator: [Enumerate.runs] emits the same run SET as the
     materialized [Enumerate.runs_ref] (different order is allowed and
     expected), [count_runs] counts it, and the abstract fast path
     ([fold_abstracts], packed masks + lazy poset) yields runs equal to
     the [to_abstract] projections — [Run.Abstract.equal] forces the
     mask-reconstructed poset against the concrete one.
   - evaluator: on ≥ 500 random guarded predicates, [find_matches]
     (compiled, lex plan) is byte-for-byte the reference interpreter's
     match list, and [holds] (compiled, reordered plan) agrees as a
     boolean — over mask-backed abstract runs of every standard size.
   - large runs: with > 62 messages the packed masks are unavailable and
     everything must fall back to the Bitset/poset paths; the arms must
     still agree.
   - model checker: the B12-tier universe counts are pinned; these are
     the numbers the paper's tables and BENCH_core.json carry. *)

open Mo_core
open Mo_order

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- enumerator vs reference ------------------------------------- *)

let run_key r = Format.asprintf "%a" Run.pp r

let standard_sizes = Modelcheck.standard_sizes

let test_run_sets () =
  List.iter
    (fun (nprocs, nmsgs) ->
      List.iter
        (fun msgs ->
          let fast = Enumerate.runs ~nprocs ~msgs
          and slow = Enumerate.runs_ref ~nprocs ~msgs in
          check_int "count_runs" (List.length slow)
            (Enumerate.count_runs ~nprocs ~msgs);
          let keys l = List.sort compare (List.map run_key l) in
          Alcotest.(check (list string))
            "same run set" (keys slow) (keys fast))
        (Enumerate.configs ~nprocs ~nmsgs ()))
    standard_sizes

let test_abstract_fast_path () =
  List.iter
    (fun (nprocs, nmsgs) ->
      List.iter
        (fun msgs ->
          (* same enumeration order on both sides, so compare pairwise;
             equality forces the lazy poset rebuilt from the packed masks
             against the concrete run's own closure *)
          let concrete =
            List.map Run.to_abstract (Enumerate.runs ~nprocs ~msgs)
          in
          let fast =
            List.rev
              (Enumerate.fold_abstracts ~nprocs ~msgs ~init:[]
                 ~f:(fun acc r -> r :: acc))
          in
          check_int "same cardinality" (List.length concrete)
            (List.length fast);
          List.iter2
            (fun a b ->
              check_bool "abstract runs equal" true (Run.Abstract.equal a b);
              (* and the limit verdicts agree between mask and poset
                 representations *)
              check_bool "is_causal agrees" (Limits.is_causal a)
                (Limits.is_causal b);
              check_bool "is_sync agrees" (Limits.is_sync a)
                (Limits.is_sync b))
            concrete fast)
        (Enumerate.configs ~nprocs ~nmsgs ()))
    (* (3,3) adds minutes of pairwise poset comparisons for no new code
       path; the smaller sizes already cross every representation *)
    [ (2, 2); (3, 2); (2, 3) ]

(* ---- compiled evaluator vs reference interpreter ------------------ *)

(* one shared pool of mask-backed abstract runs covering every standard
   size; sampled by stride so each case sees a spread, not a prefix *)
let run_pool =
  lazy
    (Array.of_list
       (List.concat_map
          (fun (nprocs, nmsgs) ->
            Enumerate.abstract_runs ~nprocs ~nmsgs ())
          standard_sizes))

let sample_runs rng =
  let pool = Lazy.force run_pool in
  let stride = 17 + Prop.int_range 0 61 rng in
  let start = Prop.int_range 0 (Array.length pool - 1) rng in
  List.init 40 (fun i -> pool.((start + (i * stride)) mod Array.length pool))

let gen_pred rng =
  Prop.frequency
    [
      (* small arities actually place all their variables in 2-3 message
         runs; larger ones exercise the early-exit and pruning paths *)
      ( 3,
        fun rng ->
          Mo_workload.Random_pred.guarded_predicate ~max_vars:3
            ~seed:(Prop.int_range 0 1_000_000 rng)
            () );
      ( 2,
        fun rng ->
          Mo_workload.Random_pred.guarded_predicate
            ~seed:(Prop.int_range 0 1_000_000 rng)
            () );
      ( 1,
        fun rng ->
          Mo_workload.Random_pred.cyclic_predicate
            ~nvars:(Prop.int_range 2 5 rng)
            ~seed:(Prop.int_range 0 1_000_000 rng) );
    ]
    rng

let agree_on_pred (p, runs) =
  let c = Eval.compile p in
  List.for_all
    (fun r ->
      (* byte-for-byte: same matches, in the same order *)
      Eval.find_matches_ref p r = Eval.find_matches_c c r
      && Eval.find_match_ref p r = Eval.find_match_c c r
      (* the reordered boolean plan agrees too, as does non-distinct
         matching *)
      && Eval.holds_ref p r = Eval.holds_c c r
      && Eval.holds_ref ~distinct:false p r
         = Eval.holds_c ~distinct:false c r)
    runs

let test_eval_differential =
  Prop.test ~count:500 ~seed:42 ~name:"compiled = reference"
    (Prop.pair gen_pred sample_runs)
    ~pp:(fun (p, _) -> Forbidden.to_string p)
    agree_on_pred

(* ---- the > 62-message fallback ----------------------------------- *)

let big_n = 70

(* a pipelined (totally ordered) big run and one with a single overtaken
   pair; both too wide for packed masks *)
let big_chain =
  lazy
    (let edges =
       List.concat
         (List.init (big_n - 1) (fun x ->
              [ (Event.deliver x, Event.send (x + 1)) ]))
     in
     Run.Abstract.create_exn ~nmsgs:big_n edges)

let big_overtake =
  lazy
    (Run.Abstract.create_exn ~nmsgs:big_n
       [
         (Event.send 0, Event.send 1); (Event.deliver 1, Event.deliver 0);
       ])

let test_big_runs () =
  List.iter
    (fun r ->
      let r = Lazy.force r in
      check_bool "masks unavailable above 62 msgs" true
        (Run.Abstract.masks r = None);
      check_bool "is_causal = check_causal" (Limits.is_causal r)
        (Result.is_ok (Limits.check_causal r));
      check_bool "is_sync = check_sync" (Limits.is_sync r)
        (Result.is_ok (Limits.check_sync r));
      List.iter
        (fun (e : Catalog.entry) ->
          check_bool e.Catalog.name
            (Eval.holds_ref e.Catalog.pred r)
            (Eval.holds e.Catalog.pred r))
        [ Catalog.causal_b2; Catalog.sync_crown 2; Catalog.fifo ])
    [ big_chain; big_overtake ];
  check_bool "chain is causal" true (Limits.is_causal (Lazy.force big_chain));
  check_bool "overtake is not causal" false
    (Limits.is_causal (Lazy.force big_overtake))

(* ---- pinned model-checker counts (B12 tier) ----------------------- *)

let test_verify_counts () =
  let sizes = standard_sizes @ [ (4, 2); (4, 3); (3, 4) ] in
  let v = Modelcheck.verify ~sizes () in
  check_int "runs" 125_768 v.Modelcheck.counts.Modelcheck.runs;
  check_int "causal" 63_364 v.Modelcheck.counts.Modelcheck.causal;
  check_int "sync" 41_432 v.Modelcheck.counts.Modelcheck.sync;
  check_bool "all lemmas hold" true (Modelcheck.ok v)

let () =
  Alcotest.run "eval_fast"
    [
      ( "enumerator",
        [
          Alcotest.test_case "run set = reference" `Slow test_run_sets;
          Alcotest.test_case "abstract fast path" `Slow
            test_abstract_fast_path;
        ] );
      ( "evaluator",
        [
          Alcotest.test_case "500 random guarded predicates" `Slow
            test_eval_differential;
          Alcotest.test_case "bitset fallback beyond 62 msgs" `Quick
            test_big_runs;
        ] );
      ( "modelcheck",
        [ Alcotest.test_case "B12-tier counts pinned" `Slow test_verify_counts ] );
    ]
