open Mo_core
open Mo_order
open Mo_protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let two_same_channel =
  [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:1 ~src:0 ~dst:1 () ]

let crossing =
  [ Sim.op ~at:0 ~src:0 ~dst:1 (); Sim.op ~at:0 ~src:1 ~dst:0 () ]

let three_msgs =
  [
    Sim.op ~at:0 ~src:0 ~dst:1 ();
    Sim.op ~at:0 ~src:1 ~dst:2 ();
    Sim.op ~at:1 ~src:0 ~dst:2 ();
  ]

let test_tagless_reaches_everything () =
  (* under every schedule, the do-nothing protocol produces exactly the
     delivery orderings the trivial enabled-set oracle reaches: both
     receiver orderings of the same-channel pair (the sender's order is
     pinned by the application's invoke order) *)
  match Explore.distinct_user_views ~nprocs:2 Tagless.factory two_same_channel with
  | Error e -> Alcotest.fail e
  | Ok runs ->
      check_int "two delivery orders" 2 (List.length runs);
      check_bool "one of them violates FIFO" true
        (List.exists
           (fun r ->
             not (Eval.satisfies Catalog.fifo.Catalog.pred (Run.to_abstract r)))
           runs)

let test_fifo_exhaustively_safe () =
  (* across every schedule, fifo delivers in order: a single user view *)
  match Explore.distinct_user_views ~nprocs:2 Fifo.factory two_same_channel with
  | Error e -> Alcotest.fail e
  | Ok runs ->
      check_int "one user view" 1 (List.length runs);
      List.iter
        (fun r ->
          check_bool "fifo holds" true
            (Eval.satisfies Catalog.fifo.Catalog.pred (Run.to_abstract r)))
        runs

let exhaustively_satisfies ?(allow_truncation = false) factory ops ~nprocs
    ~prop ~name =
  let all_ok = ref true and count = ref 0 in
  (match
     Explore.explore ~nprocs factory ops ~on_outcome:(fun o ->
         incr count;
         if not o.Explore.all_delivered then all_ok := false;
         match o.Explore.run with
         | Some r -> if not (prop r) then all_ok := false
         | None -> all_ok := false)
   with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_bool (name ^ " explored something") true (s.Explore.executions > 0);
      if not allow_truncation then
        check_bool (name ^ " not truncated") false s.Explore.truncated);
  check_bool (name ^ " all executions safe and live") true !all_ok;
  !count

let test_rst_exhaustively_causal () =
  let prop r = Limits.is_causal (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies Causal_rst.factory three_msgs ~nprocs:3 ~prop
       ~name:"rst");
  ignore
    (exhaustively_satisfies Causal_rst.factory crossing ~nprocs:2 ~prop
       ~name:"rst-crossing")

let test_ses_exhaustively_causal () =
  let prop r = Limits.is_causal (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies Causal_ses.factory three_msgs ~nprocs:3 ~prop
       ~name:"ses");
  ignore
    (exhaustively_satisfies Causal_ses.factory crossing ~nprocs:2 ~prop
       ~name:"ses-crossing");
  ignore
    (exhaustively_satisfies Causal_ses.factory two_same_channel ~nprocs:2
       ~prop ~name:"ses-channel")

let test_sync_token_exhaustively_sync () =
  let prop r = Limits.is_sync (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies Sync_token.factory crossing ~nprocs:2 ~prop
       ~name:"sync-token")

let test_sync_priority_exhaustively_sync () =
  (* the subtle one: every schedule of the symmetric duel and of a
     three-message pattern must be logically synchronous *)
  let prop r = Limits.is_sync (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies Sync_priority.factory crossing ~nprocs:2 ~prop
       ~name:"sync-priority duel");
  (* the 3-message space blows past the cap (yield/cancel rounds multiply
     schedules): a bounded-exhaustive check of the first 200k schedules *)
  ignore
    (exhaustively_satisfies ~allow_truncation:true Sync_priority.factory
       three_msgs ~nprocs:3 ~prop ~name:"sync-priority 3msg")

let test_flush_exhaustively () =
  let ops =
    [
      Sim.op ~at:0 ~src:0 ~dst:1 ();
      Sim.op ~flush:Message.Forward ~color:1 ~at:1 ~src:0 ~dst:1 ();
    ]
  in
  let spec = Catalog.local_forward_flush.Catalog.pred in
  let prop r = Eval.satisfies spec (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies Flush.factory ops ~nprocs:2 ~prop ~name:"flush")

let test_kweaker_window_exhaustively () =
  (* three same-channel messages, window k=1: under every schedule, no
     message overtakes a predecessor at distance >= 2 *)
  let ops =
    [
      Sim.op ~at:0 ~src:0 ~dst:1 ();
      Sim.op ~at:1 ~src:0 ~dst:1 ();
      Sim.op ~at:2 ~src:0 ~dst:1 ();
    ]
  in
  let kw1 =
    let open Term in
    Forbidden.make ~nvars:3
      ~guards:
        [ Same_src (0, 1); Same_dst (0, 1); Same_src (1, 2); Same_dst (1, 2) ]
      [ s 0 @> s 1; s 1 @> s 2; r 2 @> r 0 ]
  in
  let prop r = Eval.satisfies kw1 (Run.to_abstract r) in
  ignore
    (exhaustively_satisfies (Kweaker.window 1) ops ~nprocs:2 ~prop
       ~name:"kw-window-1");
  (* and the window is genuinely used: more than one distinct view *)
  match Explore.distinct_user_views ~nprocs:2 (Kweaker.window 1) ops with
  | Ok views -> check_bool "window allows reordering" true (List.length views > 1)
  | Error e -> Alcotest.fail e

let test_selective_flush_exhaustively () =
  (* ordinary, marker(forward), ordinary: under every schedule the marker
     never precedes the first message, while the third may overtake *)
  let ops =
    [
      Sim.op ~at:0 ~src:0 ~dst:1 ();
      Sim.op ~color:1 ~at:1 ~src:0 ~dst:1 ();
      Sim.op ~at:2 ~src:0 ~dst:1 ();
    ]
  in
  let prop r =
    Eval.satisfies Catalog.local_forward_flush.Catalog.pred
      (Run.to_abstract r)
  in
  ignore
    (exhaustively_satisfies
       (Flush.selective_forward ~color:1)
       ops ~nprocs:2 ~prop ~name:"selective-forward");
  match
    Explore.distinct_user_views ~nprocs:2 (Flush.selective_forward ~color:1) ops
  with
  | Ok views ->
      check_bool "uncolored traffic still reorders" true
        (List.length views > 1)
  | Error e -> Alcotest.fail e

(* engine cross-validation: every run the time-based simulator produces
   (any seed) appears among the explorer's reachable views — sampling is
   a subset of exhaustion *)
let test_sim_subset_of_explore () =
  let key r =
    String.concat "|"
      (List.init (Run.nprocs r) (fun p ->
           String.concat ","
             (List.map
                (fun e -> string_of_int (Event.encode e))
                (Run.sequence r p))))
  in
  List.iter
    (fun (factory, ops, nprocs) ->
      let views =
        match Explore.distinct_user_views ~nprocs factory ops with
        | Ok vs -> List.map key vs
        | Error e -> Alcotest.fail e
      in
      List.iter
        (fun seed ->
          let cfg =
            { (Sim.default_config ~nprocs) with Sim.seed; jitter = 20 }
          in
          match Sim.execute cfg factory ops with
          | Ok { Sim.run = Some r; _ } ->
              check_bool
                (Printf.sprintf "%s seed %d view reachable"
                   factory.Protocol.proto_name seed)
                true
                (List.mem (key r) views)
          | Ok _ -> Alcotest.fail "not live"
          | Error e -> Alcotest.fail e)
        (List.init 20 Fun.id))
    [
      (Tagless.factory, crossing, 2);
      (Fifo.factory, two_same_channel, 2);
      (Causal_rst.factory, three_msgs, 3);
      (Sync_token.factory, crossing, 2);
    ]

let test_truncation () =
  match
    Explore.explore ~max_executions:3 ~nprocs:3 Tagless.factory three_msgs
      ~on_outcome:(fun _ -> ())
  with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_bool "truncated" true s.Explore.truncated;
      check_int "stopped at cap" 3 s.Explore.executions

let test_misbehaviour_detected () =
  let bad =
    {
      Protocol.proto_name = "bad";
      kind = Protocol.General;
      make =
        (fun ~nprocs:_ ~me ->
          {
            Protocol.on_invoke =
              (fun ~now:_ (i : Protocol.intent) ->
                [
                  Protocol.Send_user
                    {
                      Message.id = i.id;
                      src = me;
                      dst = i.dst;
                      color = None;
                      payload = 0;
                      tag = Message.No_tag;
                    };
                ]);
            on_packet =
              (fun ~now:_ ~from:_ -> function
                | Message.User u ->
                    [ Protocol.Deliver u.Message.id; Protocol.Deliver u.Message.id ]
                | Message.Control _ | Message.Framed _ -> []);
            on_timer = Protocol.no_timer;
            pending_depth = (fun () -> 0);
          });
    }
  in
  match
    Explore.explore ~nprocs:2 bad two_same_channel ~on_outcome:(fun _ -> ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double delivery not detected"

(* cross-validation: the tagless implementation's reachable user views on
   the crossing pair equal the trivial oracle's (Inhibit.enable_all) *)
let test_matches_inhibit_oracle () =
  let impl =
    match Explore.distinct_user_views ~nprocs:2 Tagless.factory crossing with
    | Ok runs -> runs
    | Error e -> Alcotest.fail e
  in
  let oracle =
    Inhibit.complete_runs ~nprocs:2 ~msgs:[| (0, 1); (1, 0) |]
      Inhibit.enable_all
  in
  let key r =
    String.concat "|"
      (List.init (Run.nprocs r) (fun p ->
           String.concat ","
             (List.map
                (fun e -> string_of_int (Event.encode e))
                (Run.sequence r p))))
  in
  Alcotest.(check (list string))
    "same reachable views"
    (List.sort compare (List.map key oracle))
    (List.sort compare (List.map key impl))

let () =
  Alcotest.run "explore"
    [
      ( "unit",
        [
          Alcotest.test_case "tagless reaches everything" `Quick
            test_tagless_reaches_everything;
          Alcotest.test_case "fifo exhaustively safe" `Quick
            test_fifo_exhaustively_safe;
          Alcotest.test_case "rst exhaustively causal" `Slow
            test_rst_exhaustively_causal;
          Alcotest.test_case "ses exhaustively causal" `Slow
            test_ses_exhaustively_causal;
          Alcotest.test_case "sync-token exhaustively sync" `Slow
            test_sync_token_exhaustively_sync;
          Alcotest.test_case "sync-priority exhaustively sync" `Slow
            test_sync_priority_exhaustively_sync;
          Alcotest.test_case "flush exhaustively" `Quick
            test_flush_exhaustively;
          Alcotest.test_case "kweaker window exhaustively" `Quick
            test_kweaker_window_exhaustively;
          Alcotest.test_case "selective flush exhaustively" `Quick
            test_selective_flush_exhaustively;
          Alcotest.test_case "sim subset of explore" `Quick
            test_sim_subset_of_explore;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "misbehaviour detected" `Quick
            test_misbehaviour_detected;
          Alcotest.test_case "matches inhibit oracle" `Quick
            test_matches_inhibit_oracle;
        ] );
    ]
