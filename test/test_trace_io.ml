open Mo_order
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop_roundtrip =
  QCheck.Test.make ~name:"trace roundtrip preserves the run" ~count:120
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.run ~nprocs:4 ~nmsgs:12 ~seed () in
      match Trace_io.parse (Trace_io.to_string r) with
      | Ok r' -> Run.Abstract.equal (Run.to_abstract r) (Run.to_abstract r')
      | Error _ -> false)

let prop_monitor_agrees =
  (* serialized trace fed to the online monitor gives the same verdicts as
     the original run *)
  QCheck.Test.make ~name:"serialized trace keeps monitor verdicts" ~count:80
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.run ~nprocs:3 ~nmsgs:10 ~seed () in
      match Trace_io.parse (Trace_io.to_string r) with
      | Ok r' ->
          let v1, s1 = Online.feed_run r and v2, s2 = Online.feed_run r' in
          List.length v1 = List.length v2 && Result.is_ok s1 = Result.is_ok s2
      | Error _ -> false)

let test_simulator_bridge () =
  (* a protocol trace written by the simulator parses back identically *)
  let open Mo_protocol in
  let ops = (Gen.uniform ~nprocs:3 ~nmsgs:20 ~seed:4).Gen.ops in
  match Sim.execute (Sim.default_config ~nprocs:3) Fifo.factory ops with
  | Ok { Sim.run = Some r; _ } -> (
      let path = Filename.temp_file "mopc_trace" ".txt" in
      Trace_io.write path r;
      match Trace_io.read path with
      | Ok r' ->
          Sys.remove path;
          check_bool "same run" true
            (Run.Abstract.equal (Run.to_abstract r) (Run.to_abstract r'))
      | Error e ->
          Sys.remove path;
          Alcotest.fail (Trace_io.error_to_string e))
  | Ok _ -> Alcotest.fail "not live"
  | Error e -> Alcotest.fail e

(* every malformed shape is rejected with a typed error naming the
   offending line — and never an exception *)
let malformed_shapes =
  [
    ("truncated send", "send 0 0\ndeliver 0\n", 1);
    ("bare deliver", "send 0 0 1\ndeliver\n", 2);
    ("non-integer field", "send a 0 1\n", 1);
    ("unknown keyword", "send 0 0 1\nfrobnicate 3\n", 2);
    ("deliver before send", "deliver 0\nsend 0 0 1\n", 1);
    ("deliver without send", "send 0 0 1\ndeliver 0\ndeliver 1\n", 3);
    ("negative message id", "send -2 0 1\n", 1);
    ("negative process id", "send 0 -1 1\n", 1);
    ("absurd message id", "send 999999999999 0 1\n", 1);
    ("duplicate send", "send 0 0 1\nsend 0 1 0\n", 2);
    ("duplicate deliver", "send 0 0 1\ndeliver 0\ndeliver 0\n", 3);
  ]

let test_malformed_shapes () =
  List.iter
    (fun (name, text, expected_line) ->
      match Trace_io.parse text with
      | Ok _ -> Alcotest.fail (name ^ ": accepted")
      | Error e -> check_int (name ^ ": line") expected_line e.Trace_io.line)
    malformed_shapes

let test_incomplete_trace () =
  (* sent but never delivered: a whole-trace error, line 0 *)
  match Trace_io.parse "send 0 0 1\n" with
  | Ok _ -> Alcotest.fail "accepted incomplete trace"
  | Error e -> check_int "line" 0 e.Trace_io.line

let test_sparse_ids () =
  (* ids must be dense: id 5 with no 0..4 cannot build a run *)
  match Trace_io.parse "send 5 0 1\ndeliver 5\n" with
  | Ok _ -> Alcotest.fail "accepted sparse ids"
  | Error e -> check_int "line" 0 e.Trace_io.line

let test_unreadable_file () =
  match Trace_io.read "/nonexistent/mopc-trace.txt" with
  | Ok _ -> Alcotest.fail "read a nonexistent file"
  | Error e -> check_int "line" 0 e.Trace_io.line

let test_comments_and_blanks () =
  let text = "# a comment\n\nsend 0 0 1\n  # indented\ndeliver 0\n" in
  match Trace_io.parse text with
  | Ok r -> check_bool "one message" true (Run.nmsgs r = 1)
  | Error e -> Alcotest.fail (Trace_io.error_to_string e)

let test_error_to_string () =
  Alcotest.(check string)
    "with line" "line 3: boom"
    (Trace_io.error_to_string { Trace_io.line = 3; reason = "boom" });
  Alcotest.(check string)
    "without line" "boom"
    (Trace_io.error_to_string { Trace_io.line = 0; reason = "boom" })

let () =
  Alcotest.run "trace_io"
    [
      ( "unit",
        [
          Alcotest.test_case "simulator bridge" `Quick test_simulator_bridge;
          Alcotest.test_case "malformed shapes" `Quick test_malformed_shapes;
          Alcotest.test_case "incomplete trace" `Quick test_incomplete_trace;
          Alcotest.test_case "sparse ids" `Quick test_sparse_ids;
          Alcotest.test_case "unreadable file" `Quick test_unreadable_file;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
          Alcotest.test_case "error rendering" `Quick test_error_to_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_monitor_agrees ] );
    ]
