(* Differential verification of the streaming predicate monitors.

   - online = offline: every concrete run of the standard-plus universe
     (125,768 runs), streamed along 3 random linear extensions, must get
     the same verdict from the compiled monitor (Pmon over the
     Monitor frontier) as the offline evaluator on the completed run;
     the per-predicate offline violation counts are pinned the way
     test_eval_fast.ml pins run counts. MO_MONITOR_DEEP=1 extends the
     pass to the deep tier with a deterministic 1/37 monitored sample.
   - earliest detection: a violation must be reported at the first
     prefix whose must-closure satisfies the predicate — compared
     against an oracle that rebuilds the must-poset of every prefix and
     reruns the offline checker on it. Neither late nor speculative.
   - sharded determinism: the per-key driver produces byte-identical
     reports at jobs 1/2/4/7 (5 seeds; nightly raises the key count via
     MO_MONITOR_DEEP).
   - bounded frontier: with retirement active (window < messages) the
     resident bytes are a constant of the window, independent of stream
     length, and a violation planted deep into a long stream is still
     caught at its exact event index. *)

open Mo_core
open Mo_order
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let deep = Sys.getenv_opt "MO_MONITOR_DEEP" <> None

let plan_fifo = Eval.compile Catalog.fifo.Catalog.pred
let plan_b2 = Eval.compile Catalog.causal_b2.Catalog.pred
let plan_crown = Eval.compile (Catalog.sync_crown 2).Catalog.pred
let plans = [ plan_fifo; plan_b2; plan_crown ]

(* ---- the must-closure oracle ------------------------------------- *)

(* The must-poset of a stream prefix: observed events ordered by process
   order and message edges, plus one virtual delivery per pending
   message, pinned after the current last event of its destination.
   Messages are renumbered compactly in send order — the same order the
   monitor assigns slots. *)
let must_prefix run (events : Event.t list) =
  let nprocs = Run.nprocs run and nmsgs = Run.nmsgs run in
  let compact = Array.make nmsgs (-1) in
  let delivered = Array.make nmsgs false in
  let last = Array.make nprocs None in
  let sent = ref 0 in
  let edges = ref [] in
  let step (e : Event.t) p =
    let e' = { e with Event.msg = compact.(e.msg) } in
    (match last.(p) with
    | Some u -> edges := (u, e') :: !edges
    | None -> ());
    last.(p) <- Some e'
  in
  List.iter
    (fun (e : Event.t) ->
      match e.point with
      | Event.S ->
          compact.(e.msg) <- !sent;
          incr sent;
          step e (Run.msg_src run e.msg)
      | Event.R ->
          delivered.(e.msg) <- true;
          step e (Run.msg_dst run e.msg))
    events;
  for m = 0 to nmsgs - 1 do
    if compact.(m) >= 0 && not delivered.(m) then
      match last.(Run.msg_dst run m) with
      | Some u -> edges := (u, Event.deliver compact.(m)) :: !edges
      | None -> ()
  done;
  let attrs = Array.make !sent Run.no_attrs in
  for m = 0 to nmsgs - 1 do
    if compact.(m) >= 0 then
      attrs.(compact.(m)) <-
        Run.attrs_known ~src:(Run.msg_src run m) ~dst:(Run.msg_dst run m)
          ?color:(Run.msg_color run m) ()
  done;
  Run.Abstract.create_exn ~nmsgs:!sent ~attrs !edges

(* first prefix length whose must-closure satisfies the predicate *)
let oracle_first plan run events =
  let len = List.length events in
  let rec go l =
    if l > len then None
    else
      let prefix = List.filteri (fun i _ -> i < l) events in
      if Eval.holds_c plan (must_prefix run prefix) then Some l else go (l + 1)
  in
  go 0

let monitor_verdict plan run events = Pmon.feed_events (Pmon.exact plan run) run events

(* ---- differential: online = offline, earliest = oracle ----------- *)

let small_sizes = [ (2, 2); (3, 2); (2, 3) ]

let test_earliest_oracle () =
  List.iter
    (fun (nprocs, nmsgs) ->
      List.iter
        (fun r ->
          let events = Run.linearize_random r ~seed:(Hashtbl.hash (Run.linearize r)) in
          List.iter
            (fun plan ->
              let expected = oracle_first plan r events in
              let got =
                match monitor_verdict plan r events with
                | Some (v : Pmon.verdict) -> Some (v.at + 1)
                | None -> None
              in
              check_bool "verdict at the oracle's first unavoidable prefix"
                true
                (expected = got))
            plans)
        (Enumerate.all_runs ~nprocs ~nmsgs ()))
    small_sizes

let prop_earliest_random =
  QCheck.Test.make ~name:"oracle agreement on random runs" ~count:150
    QCheck.(int_bound 100_000)
    (fun seed ->
      let r = Random_run.run ~nprocs:3 ~nmsgs:8 ~seed () in
      let events = Run.linearize_random r ~seed in
      List.for_all
        (fun plan ->
          let expected = oracle_first plan r events in
          let got =
            match monitor_verdict plan r events with
            | Some (v : Pmon.verdict) -> Some (v.at + 1)
            | None -> None
          in
          expected = got)
        plans)

(* the full standard-plus universe, counts pinned; nightly adds the
   deep tier with a deterministic sample of monitored runs *)
let universe_sizes = Modelcheck.standard_sizes @ [ (4, 2); (4, 3); (3, 4) ]

let test_differential_universe () =
  let report =
    Modelcheck.verify_monitor ~extensions:3 ~seed:42 ~sizes:universe_sizes ()
  in
  check_bool "online = offline over the universe" true
    report.Modelcheck.m_agree;
  check_int "universe runs" 125_768 report.Modelcheck.m_runs;
  (* causal_b2 is exactly runs − causal (125,768 − 63,364): the online
     face of the Lemma 3.2 pin in test_eval_fast.ml *)
  List.iter
    (fun (name, expected) ->
      check_int name expected
        (List.assoc name report.Modelcheck.m_violations))
    [ ("fifo", 58_768); ("causal_b2", 62_404); ("crown2", 83_556) ]

let test_differential_deep () =
  if not deep then ()
  else
    let report =
      Modelcheck.verify_monitor ~extensions:2 ~seed:7 ~sample:37
        ~sizes:Modelcheck.deep_sizes ()
    in
    check_bool "online = offline over the deep tier" true
      report.Modelcheck.m_agree;
    check_int "deep runs" 940_304 report.Modelcheck.m_runs

(* ---- sharded determinism ----------------------------------------- *)

let report_repr (r : Stream.report) =
  Format.asprintf "%d:%d:%d:%s" r.Stream.key r.Stream.events
    r.Stream.frontier_bytes
    (match r.Stream.verdict with
    | None -> "-"
    | Some v ->
        Format.asprintf "%d@[%a]" v.Pmon.at
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          (Array.to_list v.Pmon.witness))

let test_sharding_deterministic () =
  let nkeys = if deep then 5_000 else 1_000 in
  let seeds = if deep then [ 11; 12; 13; 14; 15; 16; 17 ] else [ 1; 2; 3; 4; 5 ] in
  let profile = { Stream.default_profile with Stream.disorder = 0.05 } in
  List.iter
    (fun seed ->
      let logs =
        List.map
          (fun jobs ->
            let pool = Mo_par.Pool.create ~jobs () in
            let reports =
              Stream.monitor_keys ~pool ~pred:plan_fifo ~profile ~nkeys
                ~seed ()
            in
            String.concat ";"
              (Array.to_list (Array.map report_repr reports)))
          [ 1; 2; 4; 7 ]
      in
      match logs with
      | base :: rest ->
          List.iteri
            (fun i log ->
              check_bool
                (Printf.sprintf "seed %d: jobs run %d = jobs 1" seed i)
                true (log = base))
            rest
      | [] -> assert false)
    seeds;
  (* the synthetic traffic actually contains violations to log *)
  let pool = Mo_par.Pool.create ~jobs:2 () in
  let reports =
    Stream.monitor_keys ~pool ~pred:plan_fifo
      ~profile:{ Stream.default_profile with Stream.disorder = 0.05 }
      ~nkeys:1_000 ~seed:1 ()
  in
  check_bool "fuzz traffic has violations" true (Stream.violations reports > 0)

(* ---- bounded window ---------------------------------------------- *)

(* a FIFO inversion planted after [pad] clean same-channel messages:
   the overtaken message is still pending when the overtaker's delivery
   arrives, so detection must fire exactly there, long after the first
   window filled and retirement began *)
let test_windowed_detection () =
  let pad = 1_000 in
  let t = Pmon.create ~window:16 ~nprocs:2 plan_fifo in
  for m = 0 to pad - 1 do
    ignore (Pmon.send t ~msg:m ~src:0 ~dst:1 ());
    ignore (Pmon.deliver t ~msg:m)
  done;
  ignore (Pmon.send t ~msg:pad ~src:0 ~dst:1 ());
  ignore (Pmon.send t ~msg:(pad + 1) ~src:0 ~dst:1 ());
  check_bool "clean so far" true (Pmon.verdict t = None);
  let v = Pmon.deliver t ~msg:(pad + 1) in
  (match v with
  | Some v ->
      (* events: 2*pad clean, two sends, then the inverted delivery *)
      check_int "detected at the inverted delivery" ((2 * pad) + 2)
        v.Pmon.at;
      check_bool "witness is the planted pair" true
        (Array.to_list v.Pmon.witness = [ pad; pad + 1 ])
  | None -> Alcotest.fail "planted violation missed");
  (* sticky verdict; stream keeps flowing *)
  ignore (Pmon.deliver t ~msg:pad);
  check_bool "verdict sticky" true (Pmon.verdict t <> None)

let test_frontier_bounded () =
  let feed nmsgs =
    let t = Pmon.create ~window:16 ~nprocs:3 plan_b2 in
    let profile =
      { Stream.default_profile with Stream.nmsgs; Stream.disorder = 0. }
    in
    List.iter
      (function
        | Stream.Send { msg; src; dst } ->
            ignore (Pmon.send t ~msg ~src ~dst ())
        | Stream.Deliver { msg } -> ignore (Pmon.deliver t ~msg))
      (Stream.key_events profile ~seed:3 ~key:0);
    let mon = Pmon.monitor t in
    check_int "all events consumed" (2 * nmsgs) (Monitor.events mon);
    Monitor.frontier_bytes mon
  in
  let short = feed 1_000 and long = feed 10_000 in
  check_int "frontier bytes independent of stream length" short long;
  check_bool "frontier is small" true (short < 10_000)

(* ---- wide (Bitset) representation -------------------------------- *)

(* packed and forced-wide monitors over one truncated-window stream:
   after every event the two representations must hold the identical
   relation (bit for bit, all eight sections), identical slot state,
   and give the matcher the identical answer — the Bitset fallback is
   the packed automaton, just wider words *)
let test_wide_differential () =
  let w = 16 in
  let profile =
    {
      Stream.default_profile with
      Stream.nmsgs = 200;
      Stream.disorder = 0.1;
    }
  in
  let nprocs = profile.Stream.nprocs in
  let matchers =
    List.map (fun plan -> Eval.Masked.make plan) plans
  in
  let agree pm wm =
    let pmask = Monitor.masks pm and rel = Monitor.wide_rel wm in
    let plive = Monitor.live pm and wlive = Monitor.wide_live wm in
    for j = 0 to w - 1 do
      let pl = plive land (1 lsl j) <> 0 in
      check_bool "live slots agree" pl (Bitset.mem wlive j);
      if pl then begin
        check_int "slot msg" (Monitor.slot_msg pm j) (Monitor.slot_msg wm j);
        check_bool "slot delivered" (Monitor.slot_delivered pm j)
          (Monitor.slot_delivered wm j)
      end
    done;
    for i = 0 to (8 * w) - 1 do
      for y = 0 to w - 1 do
        if pmask.(i) land (1 lsl y) <> 0 <> Bitset.mem rel.(i) y then
          Alcotest.failf "relation row %d bit %d differs" i y
      done
    done;
    List.iter
      (fun matcher ->
        let a =
          Eval.Masked.find matcher ~n:w ~live:plive ~masks:pmask
            ~src:(Monitor.slot_src pm) ~dst:(Monitor.slot_dst pm)
            ~color:(Monitor.slot_color pm)
        and b =
          Eval.Masked.find_wide matcher ~n:w ~live:wlive ~rel
            ~src:(Monitor.slot_src wm) ~dst:(Monitor.slot_dst wm)
            ~color:(Monitor.slot_color wm)
        in
        check_bool "matcher verdicts agree" true (a = b))
      matchers
  in
  List.iter
    (fun seed ->
      let pm = Monitor.create ~window:w ~nprocs () in
      let wm = Monitor.create ~window:w ~wide:true ~nprocs () in
      check_bool "small window defaults packed" false (Monitor.is_wide pm);
      check_bool "wide:true forces the Bitset path" true (Monitor.is_wide wm);
      List.iter
        (fun ev ->
          (match ev with
          | Stream.Send { msg; src; dst } ->
              Monitor.send pm ~msg ~src ~dst ();
              Monitor.send wm ~msg ~src ~dst ()
          | Stream.Deliver { msg } ->
              Monitor.deliver pm ~msg;
              Monitor.deliver wm ~msg);
          check_int "events agree" (Monitor.events pm) (Monitor.events wm);
          check_int "retired agree" (Monitor.retired pm)
            (Monitor.retired wm);
          check_int "pending agree" (Monitor.pending pm)
            (Monitor.pending wm);
          agree pm wm)
        (Stream.key_events profile ~seed ~key:0))
    [ 1; 2; 3 ]

(* a window no packed int can hold: 100 messages in flight at once,
   then a FIFO inversion — only the Bitset representation can keep every
   pending slot resident, and Pmon routes to it transparently *)
let test_wide_window_128 () =
  let t = Pmon.create ~window:128 ~nprocs:2 plan_fifo in
  check_bool "window 128 is wide" true (Monitor.is_wide (Pmon.monitor t));
  for m = 0 to 99 do
    ignore (Pmon.send t ~msg:m ~src:0 ~dst:1 ())
  done;
  check_bool "100 in flight, clean" true (Pmon.verdict t = None);
  check_int "all pending" 100 (Monitor.pending (Pmon.monitor t));
  (* deliver the newest first: overtakes all 99 older channel-mates *)
  let v = Pmon.deliver t ~msg:99 in
  (match v with
  | Some v ->
      check_int "detected at the inverted delivery" 100 v.Pmon.at;
      check_bool "witness is an overtaken pair" true
        (match List.sort compare (Array.to_list v.Pmon.witness) with
        | [ x; y ] -> x < 99 && y = 99
        | _ -> false)
  | None -> Alcotest.fail "planted violation missed");
  for m = 0 to 98 do
    ignore (Pmon.deliver t ~msg:m)
  done;
  check_int "all events consumed" 200 (Monitor.events (Pmon.monitor t))

let test_window_exhaustion () =
  let t = Monitor.create ~window:2 ~nprocs:2 () in
  Monitor.send t ~msg:0 ~src:0 ~dst:1 ();
  Monitor.send t ~msg:1 ~src:0 ~dst:1 ();
  Alcotest.check_raises "exhausted window raises"
    (Invalid_argument "Monitor.send: window exhausted (every slot pending)")
    (fun () -> Monitor.send t ~msg:2 ~src:0 ~dst:1 ());
  (* delivering frees a retirable slot *)
  Monitor.deliver t ~msg:0;
  Monitor.send t ~msg:2 ~src:0 ~dst:1 ();
  check_int "one slot recycled" 1 (Monitor.retired t)

let () =
  Alcotest.run "monitor"
    [
      ( "differential",
        [
          Alcotest.test_case "earliest = oracle (exhaustive)" `Slow
            test_earliest_oracle;
          Alcotest.test_case "universe, counts pinned" `Slow
            test_differential_universe;
          Alcotest.test_case "deep tier (MO_MONITOR_DEEP)" `Slow
            test_differential_deep;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "jobs-independent reports" `Slow
            test_sharding_deterministic;
        ] );
      ( "window",
        [
          Alcotest.test_case "planted violation behind retirement" `Quick
            test_windowed_detection;
          Alcotest.test_case "frontier bytes bounded" `Quick
            test_frontier_bounded;
          Alcotest.test_case "exhaustion raises" `Quick
            test_window_exhaustion;
          Alcotest.test_case "wide = packed on truncated windows" `Slow
            test_wide_differential;
          Alcotest.test_case "window 128 (Bitset fallback)" `Quick
            test_wide_window_128;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_earliest_random ] );
    ]
