open Mo_order
open Mo_workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* offline FIFO verdict: the catalog predicate over the abstract run *)
let offline_fifo_ok a =
  Mo_core.Eval.satisfies Mo_core.Catalog.fifo.Mo_core.Catalog.pred a

let offline_causal_ok = Limits.is_causal

let online_verdicts run =
  let violations, sync = Online.feed_run run in
  let fifo_ok =
    not (List.exists (fun (v : Online.violation) -> v.kind = `Fifo) violations)
  in
  let causal_ok =
    not
      (List.exists (fun (v : Online.violation) -> v.kind = `Causal) violations)
  in
  (fifo_ok, causal_ok, Result.is_ok sync)

let agree run =
  let a = Run.to_abstract run in
  let fifo_on, causal_on, sync_on = online_verdicts run in
  fifo_on = offline_fifo_ok a
  && causal_on = offline_causal_ok a
  && sync_on = Limits.is_sync a

(* exhaustive agreement on every small run *)
let test_agreement_exhaustive () =
  List.iter
    (fun r -> check_bool "agreement" true (agree r))
    (Enumerate.all_runs ~nprocs:2 ~nmsgs:2 ()
    @ Enumerate.all_runs ~nprocs:3 ~nmsgs:2 ()
    @ Enumerate.all_runs ~nprocs:2 ~nmsgs:3 ())

let prop_agreement_random =
  QCheck.Test.make ~name:"online = offline on random runs" ~count:120
    QCheck.(int_bound 5_000)
    (fun seed -> agree (Random_run.run ~nprocs:4 ~nmsgs:14 ~seed ()))

let prop_agreement_causal_runs =
  QCheck.Test.make ~name:"no causal violations on causal runs" ~count:120
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.causal_run ~nprocs:4 ~nmsgs:14 ~seed () in
      let _, causal_ok, _ = online_verdicts r in
      causal_ok)

let prop_sync_numbering =
  QCheck.Test.make ~name:"finalize numbering is a SYNC witness" ~count:100
    QCheck.(int_bound 5_000)
    (fun seed ->
      let r = Random_run.serialized_run ~nprocs:3 ~nmsgs:10 ~seed () in
      match Online.feed_run r with
      | _, Ok t ->
          let a = Run.to_abstract r in
          List.for_all
            (fun (x, y) -> t.(x) < t.(y))
            (Run.Abstract.message_graph a)
      | _, Error _ -> false)

let test_violation_identities () =
  (* P0 sends x0 then x1 on one channel; delivery inverted *)
  let r =
    match
      Run.of_sequences ~nprocs:2
        ~msgs:[| (0, 1); (0, 1) |]
        [|
          [ Event.send 0; Event.send 1 ];
          [ Event.deliver 1; Event.deliver 0 ];
        |]
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let violations, _ = Online.feed_run r in
  (* the stream is s0 s1 r1 r0: both violations complete at r1, the
     third event, on channel (0, 1) *)
  check_bool "fifo violation found" true
    (List.exists
       (fun (v : Online.violation) ->
         v.kind = `Fifo && v.earlier = 0 && v.later = 1 && v.at = 2
         && v.channel = (0, 1))
       violations);
  check_bool "causal violation found" true
    (List.exists
       (fun (v : Online.violation) ->
         v.kind = `Causal && v.earlier = 0 && v.later = 1 && v.at = 2
         && v.channel = (0, 1))
       violations)

let test_misuse_detected () =
  let t = Online.create ~nprocs:2 ~nmsgs:2 in
  Online.send t ~msg:0 ~src:0 ~dst:1;
  Alcotest.check_raises "duplicate send"
    (Invalid_argument "Online.send: duplicate send") (fun () ->
      Online.send t ~msg:0 ~src:0 ~dst:1);
  Alcotest.check_raises "deliver unsent"
    (Invalid_argument "Online.deliver: message not sent") (fun () ->
      ignore (Online.deliver t ~msg:1));
  ignore (Online.deliver t ~msg:0);
  Alcotest.check_raises "duplicate delivery"
    (Invalid_argument "Online.deliver: duplicate delivery") (fun () ->
      ignore (Online.deliver t ~msg:0))

let test_accounting () =
  let t = Online.create ~nprocs:2 ~nmsgs:4 in
  check_int "no events yet" 0 (Online.events t);
  Online.send t ~msg:0 ~src:0 ~dst:1;
  Online.send t ~msg:1 ~src:0 ~dst:1;
  check_int "two events" 2 (Online.events t);
  check_int "two pending" 2 (Online.pending t);
  let before = Online.frontier_bytes t in
  check_bool "frontier measured" true (before > 0);
  ignore (Online.deliver t ~msg:0);
  check_int "delivery counted" 3 (Online.events t);
  check_int "one pending" 1 (Online.pending t);
  check_bool "frontier does not shrink reporting" true
    (Online.frontier_bytes t > 0)

let test_scales () =
  (* a 2000-message random run: the offline poset checker would build a
     4000^2 closure; the monitor handles it comfortably *)
  let r = Random_run.causal_run ~nprocs:6 ~nmsgs:2000 ~seed:1 () in
  let violations, _sync = Online.feed_run r in
  check_bool "no causal violations at scale" true
    (not
       (List.exists
          (fun (v : Online.violation) -> v.kind = `Causal)
          violations))

let () =
  Alcotest.run "online"
    [
      ( "unit",
        [
          Alcotest.test_case "exhaustive agreement" `Slow
            test_agreement_exhaustive;
          Alcotest.test_case "violation identities" `Quick
            test_violation_identities;
          Alcotest.test_case "misuse detected" `Quick test_misuse_detected;
          Alcotest.test_case "events and frontier accounting" `Quick
            test_accounting;
          Alcotest.test_case "scales to 2000 messages" `Slow test_scales;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_agreement_random;
            prop_agreement_causal_runs;
            prop_sync_numbering;
          ] );
    ]
