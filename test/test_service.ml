(* The mopcd service stack, transport layer by transport layer: frame
   codec (roundtrip, truncation, garbage headers, nonblocking decode-
   ahead), striped LRU decision cache (hit/miss/eviction accounting,
   per-stripe isolation under concurrent workers, snapshot/restore),
   disk persistence, and the request engine (canonical cache keying,
   deadline admission with an injected clock, malformed requests
   answered — never raised — batch and pipelined-group responses
   byte-identical for every job count). The edge suite drives the real
   daemon binary: kill -9 cycles, pipelining, TCP, warm restarts. *)

module J = Mo_obs.Jsonb
module Codec = Mo_service.Codec
module Cache = Mo_service.Cache
module Engine = Mo_service.Engine
module Persist = Mo_service.Persist

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let pred = Mo_core.Parse.predicate_exn
let causal = "x.s < y.s & y.r < x.r"
let fifo = "x.s < y.s & y.r < x.r & src(x) = src(y)"

(* ---- framing ---- *)

let with_pipe f =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_frame_roundtrip () =
  with_pipe (fun rd wr ->
      let docs =
        [
          J.Obj [ ("id", J.Int 1); ("op", J.String "stats") ];
          J.Obj [ ("id", J.Int 2); ("pred", J.String causal) ];
          J.List [ J.Int 1; J.Null; J.String "x\ny" ];
        ]
      in
      List.iter (Codec.write_frame wr) docs;
      Unix.close wr;
      let r = Codec.reader rd in
      List.iter
        (fun doc ->
          match Codec.read_frame r with
          | Ok (Some got) ->
              check_string "frame" (J.to_string doc) (J.to_string got)
          | Ok None -> Alcotest.fail "premature end of stream"
          | Error e -> Alcotest.fail e)
        docs;
      match Codec.read_frame r with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom frame"
      | Error e -> Alcotest.fail ("clean EOF reported as: " ^ e))

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let expect_frame_error name text =
  with_pipe (fun rd wr ->
      write_all wr text;
      Unix.close wr;
      match Codec.read_frame (Codec.reader rd) with
      | Error _ -> ()
      | Ok None -> Alcotest.fail (name ^ ": reported clean EOF")
      | Ok (Some _) -> Alcotest.fail (name ^ ": accepted"))

let test_frame_malformed () =
  expect_frame_error "garbage header" "notanumber\n{}\n";
  expect_frame_error "negative length" "-4\n{}\n";
  expect_frame_error "truncated payload" "100\n{\"id\":1}";
  expect_frame_error "bad json" "9\nnot json!\n";
  expect_frame_error "unterminated header" "123";
  (* an oversized declared length is rejected from the header alone *)
  expect_frame_error "oversized frame"
    (string_of_int (Codec.default_max_frame + 1) ^ "\n")

let test_frame_max_len () =
  with_pipe (fun rd wr ->
      let doc = J.Obj [ ("blob", J.String (String.make 64 'a')) ] in
      write_all wr (Codec.encode_frame doc);
      Unix.close wr;
      match Codec.read_frame ~max_len:16 (Codec.reader rd) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "frame above max_len accepted")

(* the decode-ahead primitive: partial frames never block and never
   consume, buffered whole frames come out without touching the fd *)
let test_frame_nonblock () =
  with_pipe (fun rd wr ->
      let r = Codec.reader rd in
      check_bool "empty pipe: nothing" true
        (Codec.read_frame_nonblock r = `Nothing);
      let doc = J.Obj [ ("id", J.Int 1) ] in
      let s = Codec.encode_frame doc in
      write_all wr (String.sub s 0 3);
      check_bool "partial frame: nothing (and no block)" true
        (Codec.read_frame_nonblock r = `Nothing);
      write_all wr (String.sub s 3 (String.length s - 3));
      (* a second whole frame arrives in the same flight *)
      write_all wr s;
      (match Codec.read_frame_nonblock r with
      | `Frame got ->
          check_string "frame 1" (J.to_string doc) (J.to_string got)
      | _ -> Alcotest.fail "complete frame not parsed");
      (* the pipelined frame is already buffered: parsed with no read *)
      (match Codec.read_frame_nonblock r with
      | `Frame got ->
          check_string "frame 2" (J.to_string doc) (J.to_string got)
      | _ -> Alcotest.fail "buffered frame not parsed");
      Unix.close wr;
      check_bool "eof" true (Codec.read_frame_nonblock r = `Eof))

(* ---- cache ---- *)

let test_cache_lru () =
  let reg = Mo_obs.Metrics.create () in
  let c = Cache.create ~capacity:2 ~registry:reg () in
  check_bool "empty miss" true (Cache.find c "a" = None);
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  check_bool "a hit" true (Cache.find c "a" = Some 1);
  (* "b" is now least-recently-used; inserting "c" evicts it *)
  Cache.put c "c" 3;
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a survives" true (Cache.find c "a" = Some 1);
  check_bool "c present" true (Cache.find c "c" = Some 3);
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c);
  check_int "evictions" 1 (Cache.evictions c);
  check_int "size" 2 (Cache.size c);
  check_int "registry hits" 3
    (Option.value ~default:(-1) (Mo_obs.Metrics.value reg "svc.cache_hits"));
  check_int "registry evictions" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value reg "svc.cache_evictions"))

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 () in
  Cache.put c "a" 1;
  check_bool "nothing stored" true (Cache.find c "a" = None);
  check_int "size" 0 (Cache.size c);
  check_int "misses" 1 (Cache.misses c)

(* the digest → stripe map is Hashtbl.hash mod nstripes (deterministic
   on strings), so a test can bin keys exactly as the cache will *)
let stripe_of key nstripes = Hashtbl.hash key mod nstripes

let test_cache_striping () =
  let reg = Mo_obs.Metrics.create () in
  let c = Cache.create ~capacity:64 ~stripes:4 ~registry:reg () in
  check_int "nstripes" 4 (Cache.nstripes c);
  let key i = Printf.sprintf "digest-%d" i in
  for i = 0 to 39 do
    Cache.put c (key i) i
  done;
  for i = 0 to 39 do
    check_bool "resident" true (Cache.find c (key i) = Some i)
  done;
  check_int "size" 40 (Cache.size c);
  check_int "hits" 40 (Cache.hits c);
  check_int "misses" 0 (Cache.misses c);
  let stats = Cache.stripe_stats c in
  check_int "stripe stats per stripe" 4 (Array.length stats);
  check_int "stripe sizes sum to size" 40
    (Array.fold_left (fun a s -> a + s.Cache.size) 0 stats);
  check_int "stripe hits sum to hits" 40
    (Array.fold_left (fun a s -> a + s.Cache.hits) 0 stats);
  check_bool "traffic spreads over stripes" true
    (Array.fold_left (fun a s -> a + if s.Cache.size > 0 then 1 else 0) 0 stats
    >= 2);
  (* each stripe saw exactly its own keys' traffic *)
  Array.iteri
    (fun s st ->
      let mine = ref 0 in
      for i = 0 to 39 do
        if stripe_of (key i) 4 = s then incr mine
      done;
      check_int (Printf.sprintf "stripe %d size" s) !mine st.Cache.size)
    stats

(* concurrent workers on distinct digests, binned so each worker's keys
   live on its own stripe: per-stripe counters come out exact — the
   evidence that distinct-digest traffic never serializes (or leaks)
   across stripes. Deterministic for any job count, including the 4.14
   inline fallback. *)
let test_cache_striping_concurrent () =
  let nstripes = 4 and keys_per = 8 and rounds = 10 in
  let reg = Mo_obs.Metrics.create () in
  let c =
    Cache.create ~capacity:400 ~stripes:nstripes ~registry:reg ()
  in
  let by_stripe = Array.make nstripes [] in
  let k = ref 0 in
  while Array.exists (fun l -> List.length l < keys_per) by_stripe do
    let key = Printf.sprintf "digest-%d" !k in
    incr k;
    let s = stripe_of key nstripes in
    if List.length by_stripe.(s) < keys_per then
      by_stripe.(s) <- key :: by_stripe.(s)
  done;
  let w = Mo_par.Workers.create ~jobs:nstripes in
  Array.iter
    (fun keys ->
      Mo_par.Workers.submit w (fun () ->
          for _ = 1 to rounds do
            List.iter
              (fun key ->
                match Cache.find c key with
                | None -> Cache.put c key 0
                | Some _ -> ())
              keys
          done))
    by_stripe;
  Mo_par.Workers.shutdown w;
  Array.iteri
    (fun s st ->
      check_int (Printf.sprintf "stripe %d ops" s) (keys_per * rounds)
        (st.Cache.hits + st.Cache.misses);
      check_int (Printf.sprintf "stripe %d misses" s) keys_per
        st.Cache.misses;
      check_int (Printf.sprintf "stripe %d size" s) keys_per st.Cache.size)
    (Cache.stripe_stats c);
  check_int "aggregate hits" (nstripes * keys_per * (rounds - 1))
    (Cache.hits c);
  check_int "aggregate misses" (nstripes * keys_per) (Cache.misses c);
  check_int "aggregate size" (nstripes * keys_per) (Cache.size c)

let test_cache_snapshot_restore () =
  let c = Cache.create ~capacity:3 () in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Cache.put c "c" 3;
  (* touch "a": recency is now a (MRU), c, b (LRU) *)
  ignore (Cache.find c "a");
  let snap = Cache.snapshot c in
  check_int "snapshot covers the residents" 3 (List.length snap);
  check_string "LRU first" "b" (fst (List.hd snap));
  let c2 = Cache.create ~capacity:3 () in
  check_int "restored" 3 (Cache.restore c2 snap);
  check_int "loaded" 3 (Cache.loaded c2);
  check_int "restore counts no hits" 0 (Cache.hits c2);
  check_int "restore counts no misses" 0 (Cache.misses c2);
  (* recency was reproduced: a new entry evicts "b", the old LRU *)
  Cache.put c2 "d" 4;
  check_bool "old LRU evicted" true (Cache.find c2 "b" = None);
  check_bool "old MRU kept" true (Cache.find c2 "a" = Some 1);
  check_bool "middle kept" true (Cache.find c2 "c" = Some 3);
  (* restoring into a smaller cache keeps the most recent entries *)
  let c3 = Cache.create ~capacity:2 () in
  ignore (Cache.restore c3 snap);
  check_int "overflow evicted" 1 (Cache.evictions c3);
  check_bool "LRU dropped on overflow" true (Cache.find c3 "b" = None);
  check_bool "MRU survives overflow" true (Cache.find c3 "a" = Some 1)

(* entry-age accounting under an injected clock: ages come straight off
   the LRU recency list (stamp order = recency order), min at the MRU
   head, max at the LRU tail, median in between; a hit refreshes the
   stamp *)
let test_cache_age_stats () =
  let now = ref 100. in
  let c = Cache.create ~capacity:8 ~clock:(fun () -> !now) () in
  let ages () =
    let s = (Cache.stripe_stats c).(0) in
    (s.Cache.age_min_s, s.Cache.age_median_s, s.Cache.age_max_s)
  in
  check_bool "empty stripe reports zero ages" true (ages () = (0., 0., 0.));
  Cache.put c "a" 1;
  now := 110.;
  Cache.put c "b" 2;
  now := 130.;
  Cache.put c "c" 3;
  now := 140.;
  (* ages now: c = 10 (MRU), b = 30, a = 40 (LRU) *)
  check_bool "min/median/max in recency order" true (ages () = (10., 30., 40.));
  ignore (Cache.find c "a");
  (* the hit restamped "a": 0 (MRU), c = 10, b = 30 *)
  check_bool "a hit refreshes the stamp" true (ages () = (0., 10., 30.));
  Cache.put c "d" 4;
  (* even population: d = 0, a = 0, c = 10, b = 30 → median (0+10)/2 *)
  check_bool "even median is the middle mean" true (ages () = (0., 5., 30.))

(* ---- persistence ---- *)

let test_persist_roundtrip () =
  let path = Filename.temp_file "mo-persist" ".json" in
  let entries =
    [
      ("c:abc", J.Obj [ ("verdict", J.String "implementable") ]);
      ("w:def", J.Null);
      ("i:a:b", J.List [ J.Int 1; J.Bool true ]);
    ]
  in
  Persist.save ~path entries;
  (match Persist.load ~path with
  | Ok (Some got) ->
      check_int "entries survive" 3 (List.length got);
      List.iter2
        (fun (k1, v1) (k2, v2) ->
          check_string "key" k1 k2;
          check_string "payload" (J.to_string v1) (J.to_string v2))
        entries got
  | Ok None -> Alcotest.fail "snapshot reported missing"
  | Error e -> Alcotest.fail e);
  (* saving over an existing snapshot replaces it atomically *)
  Persist.save ~path [ ("only", J.Int 7) ];
  (match Persist.load ~path with
  | Ok (Some [ ("only", J.Int 7) ]) -> ()
  | _ -> Alcotest.fail "second save did not replace the snapshot");
  Sys.remove path;
  check_bool "missing file is a cold start, not an error" true
    (Persist.load ~path = Ok None);
  (* corrupt and wrong-version snapshots are errors, never crashes *)
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "{not json";
  check_bool "corrupt snapshot is an error" true
    (Result.is_error (Persist.load ~path));
  write "{\"version\":99,\"entries\":[]}";
  check_bool "wrong version is an error" true
    (Result.is_error (Persist.load ~path));
  write "{\"version\":1,\"entries\":[[1,2]]}";
  check_bool "malformed entry is an error" true
    (Result.is_error (Persist.load ~path));
  Sys.remove path

(* ---- engine ---- *)

let envelope ?deadline_ms ?(id = 1) req =
  { Codec.id; deadline_ms; req }

let ok_result resp =
  match Codec.result_of_response resp with
  | Ok payload -> payload
  | Error e -> Alcotest.fail ("error response: " ^ e)

let field name = function
  | J.Obj fields -> List.assoc name fields
  | _ -> Alcotest.fail "payload is not an object"

let test_engine_cache_keying () =
  let t = Engine.create ~cache_capacity:16 () in
  let r1 =
    ok_result (Engine.handle t (envelope (Codec.Classify (pred causal))))
  in
  (* an alpha-renaming of the same predicate must hit the same entry
     and produce the byte-identical payload *)
  let r2 =
    ok_result
      (Engine.handle t
         (envelope ~id:2 (Codec.Classify (pred "a.s < b.s & b.r < a.r"))))
  in
  check_string "alpha-equivalent payloads" (J.to_string r1) (J.to_string r2);
  check_int "one miss" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_misses"));
  check_int "one hit" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"));
  check_bool "implementable" true
    (field "implementable" r1 = J.Bool true);
  match field "class" r1 with
  | J.String c -> check_string "class" "tagged" c
  | _ -> Alcotest.fail "class is not a string"

let test_engine_malformed () =
  let t = Engine.create () in
  let reject name json =
    match Engine.handle_json t json with
    | J.Obj fields ->
        check_bool (name ^ ": ok=false") true
          (List.assoc "ok" fields = J.Bool false)
    | _ -> Alcotest.fail (name ^ ": response is not an object")
  in
  reject "not an object" (J.List []);
  reject "no op" (J.Obj [ ("id", J.Int 3) ]);
  reject "unknown op" (J.Obj [ ("id", J.Int 3); ("op", J.String "frob") ]);
  reject "bad predicate"
    (J.Obj
       [ ("id", J.Int 3); ("op", J.String "classify");
         ("pred", J.String "x.s <") ]);
  reject "implies missing arg"
    (J.Obj
       [ ("id", J.Int 3); ("op", J.String "implies");
         ("pred", J.String causal) ])

let test_engine_deadline () =
  let now = ref 0. in
  let t = Engine.create ~clock:(fun () -> !now) () in
  let req = Codec.Classify (pred causal) in
  (* a deadline in the future is admitted... *)
  (match
     Codec.result_of_response
       (Engine.handle t (envelope ~deadline_ms:50 req))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("live deadline rejected: " ^ e));
  (* ...but when 10 s pass between arrival and admission, a 50 ms
     deadline has lapsed: rejected without being computed, while its
     undeadlined batch sibling is unaffected *)
  now := 10.;
  let batch =
    Codec.Batch
      [ envelope ~id:7 ~deadline_ms:50 req; envelope ~id:8 req ]
  in
  match ok_result (Engine.handle t ~received:0. (envelope ~id:9 batch)) with
  | payload -> (
      match field "responses" payload with
      | J.List [ first; second ] ->
          (match Codec.result_of_response first with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "expired deadline admitted");
          (match Codec.result_of_response second with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("undeadlined sibling failed: " ^ e));
          check_int "deadline counter" 1
            (Option.value ~default:(-1)
               (Mo_obs.Metrics.value (Engine.registry t)
                  "svc.deadline_expired"))
      | _ -> Alcotest.fail "batch did not return two responses")

let batch_workload () =
  let preds =
    [
      causal; fifo; "a.s < b.s & b.r < a.r" (* causal, renamed *);
      "x.s < y.r"; "x.r < x.s"; "x.s < y.r & y.s < x.r";
    ]
  in
  List.concat_map
    (fun p ->
      [
        envelope ~id:0 (Codec.Classify (pred p));
        envelope ~id:0 (Codec.Witness (pred p));
      ])
    preds
  @ [
      envelope ~id:0 (Codec.Implies (pred fifo, pred causal));
      envelope ~id:0 (Codec.Minimize [ pred fifo; pred causal ]);
    ]
  |> List.mapi (fun i e -> { e with Codec.id = i + 1 })

let run_batch ~jobs =
  let pool = Mo_par.Pool.create ~jobs () in
  (* a frozen clock: cache entry ages are part of the stats payload and
     must not leak wall time into the byte-identity check *)
  let t = Engine.create ~pool ~clock:(fun () -> 0.) () in
  let resp =
    Engine.handle t (envelope ~id:99 (Codec.Batch (batch_workload ())))
  in
  (J.to_string resp, Engine.cache_stats t)

let test_batch_determinism () =
  let r1, s1 = run_batch ~jobs:1 in
  let r2, s2 = run_batch ~jobs:2 in
  let r4, s4 = run_batch ~jobs:4 in
  check_string "jobs 1 = jobs 2" r1 r2;
  check_string "jobs 1 = jobs 4" r1 r4;
  (* hit/miss accounting is part of the contract, not just payloads *)
  check_string "stats jobs 1 = jobs 2" (J.to_string s1) (J.to_string s2);
  check_string "stats jobs 1 = jobs 4" (J.to_string s1) (J.to_string s4)

(* pipelined groups: responses byte-identical, slot for slot, to
   serving the same stream one frame at a time — for every job count *)
let test_pipelined_group () =
  let jsons =
    List.map Codec.request_to_json (batch_workload ())
    (* an unparsable member gets an error response in its slot *)
    @ [ J.Obj [ ("id", J.Int 99); ("op", J.String "frob") ] ]
  in
  let sequential =
    let t = Engine.create () in
    List.map (fun j -> fst (Engine.serve_json t j)) jsons
  in
  List.iter
    (fun jobs ->
      let t = Engine.create ~pool:(Mo_par.Pool.create ~jobs ()) () in
      let resps, stop = Engine.serve_json_many t jsons in
      check_bool "no shutdown in the group" false stop;
      check_int "one response per request" (List.length jsons)
        (List.length resps);
      List.iteri
        (fun i (a, b) ->
          check_string
            (Printf.sprintf "jobs %d slot %d" jobs i)
            (J.to_string a) (J.to_string b))
        (List.combine sequential resps))
    [ 1; 2; 4 ];
  (* a shutdown mid-group raises the stop flag but still answers every
     member, in order *)
  let t = Engine.create () in
  let group =
    [
      envelope ~id:1 (Codec.Classify (pred causal));
      envelope ~id:2 Codec.Shutdown;
      envelope ~id:3 (Codec.Classify (pred fifo));
    ]
  in
  let resps, stop = Engine.serve_many t group in
  check_bool "shutdown mid-group stops the server" true stop;
  check_int "everything answered" 3 (List.length resps);
  List.iteri
    (fun i resp ->
      match Codec.result_of_response resp with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "slot %d: %s" i e))
    resps

(* snapshot → restore: the warm engine answers from the table, with the
   byte-identical payload and no recompute *)
let test_engine_warm_restart () =
  let t1 = Engine.create () in
  ignore (Engine.handle t1 (envelope (Codec.Classify (pred causal))));
  ignore (Engine.handle t1 (envelope ~id:2 (Codec.Witness (pred fifo))));
  let snap = Engine.snapshot t1 in
  check_int "snapshot covers both decisions" 2 (List.length snap);
  let t2 = Engine.create () in
  check_int "restored" 2 (Engine.restore t2 snap);
  let r1 =
    ok_result
      (Engine.handle t1 (envelope ~id:3 (Codec.Classify (pred causal))))
  in
  let r2 =
    ok_result
      (Engine.handle t2 (envelope ~id:3 (Codec.Classify (pred causal))))
  in
  check_string "warm payload byte-identical" (J.to_string r1)
    (J.to_string r2);
  check_int "first warm query is a hit" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t2) "svc.cache_hits"));
  check_int "nothing recomputed" 0
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t2) "svc.cache_misses"));
  (* the stats payload says how warm this instance started *)
  let stats = ok_result (Engine.handle t2 (envelope ~id:4 Codec.Stats)) in
  match field "cache" stats with
  | J.Obj fields ->
      check_bool "stats reports loaded entries" true
        (List.assoc "loaded" fields = J.Int 2)
  | _ -> Alcotest.fail "stats payload lacks a cache object"

let test_shutdown_semantics () =
  let t = Engine.create () in
  (* a top-level shutdown is acknowledged and raises the stop flag *)
  let resp, stop =
    Engine.serve_json t
      (Codec.request_to_json (envelope ~id:5 Codec.Shutdown))
  in
  check_bool "top-level shutdown stops the server" true stop;
  check_bool "shutdown acknowledged" true
    (field "shutdown" (ok_result resp) = J.Bool true);
  (* nested in a batch it is an error and must NOT stop the server *)
  let resp, stop =
    Engine.serve_json t
      (Codec.request_to_json
         (envelope ~id:6 (Codec.Batch [ envelope ~id:7 Codec.Shutdown ])))
  in
  check_bool "batched shutdown does not stop the server" false stop;
  (match field "responses" (ok_result resp) with
  | J.List [ member ] -> (
      match Codec.result_of_response member with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shutdown inside a batch was accepted")
  | _ -> Alcotest.fail "batch did not return one response");
  (* ordinary requests report no shutdown *)
  let _, stop =
    Engine.serve_json t
      (Codec.request_to_json (envelope ~id:8 Codec.Stats))
  in
  check_bool "stats does not stop the server" false stop

let test_payload_shapes () =
  let t = Engine.create () in
  let imp =
    ok_result
      (Engine.handle t
         (envelope (Codec.Implies (pred fifo, pred causal))))
  in
  (* B_fifo adds a guard to B_causal's cycle, so B_fifo ⟹ B_causal
     (and X_causal ⊆ X_fifo), but not conversely *)
  check_bool "fifo pattern implies causal pattern" true
    (field "forward" imp = J.Bool true);
  check_bool "converse fails" true (field "backward" imp = J.Bool false);
  let wit =
    ok_result (Engine.handle t (envelope ~id:2 (Codec.Witness (pred causal))))
  in
  check_bool "causal has a witness" true (field "witness" wit = J.Bool true);
  let min_ =
    ok_result
      (Engine.handle t
         (envelope ~id:3 (Codec.Minimize [ pred fifo; pred causal ])))
  in
  (match field "kept" min_ with
  | J.List kept -> check_bool "minimize kept >= 1" true (List.length kept >= 1)
  | _ -> Alcotest.fail "kept is not a list");
  let stats = ok_result (Engine.handle t (envelope ~id:4 Codec.Stats)) in
  match field "cache" stats with
  | J.Obj fields -> check_bool "cache stats" true (List.mem_assoc "hits" fields)
  | _ -> Alcotest.fail "stats payload lacks a cache object"

let test_monitor_op () =
  let t = Engine.create ~cache_capacity:16 () in
  let trace good =
    if good then "send 0 0 1\nsend 1 0 1\ndeliver 0\ndeliver 1\n"
    else "send 0 0 1\nsend 1 0 1\ndeliver 1\ndeliver 0\n"
  in
  let monitor ?id text =
    Engine.handle t (envelope ?id (Codec.Monitor (pred fifo, text, None)))
  in
  let clean = ok_result (monitor (trace true)) in
  check_bool "clean trace: no violation" true
    (field "violation" clean = J.Null);
  check_bool "events counted" true (field "events" clean = J.Int 4);
  let bad = ok_result (monitor ~id:2 (trace false)) in
  (match field "violation" bad with
  | J.Obj fields ->
      check_bool "violation at the completing delivery" true
        (List.assoc "at" fields = J.Int 2);
      check_bool "witness names both messages" true
        (List.assoc "witness" fields = J.List [ J.Int 0; J.Int 1 ])
  | _ -> Alcotest.fail "violating trace reported null");
  (* prefixes are fine: pending messages just show up in the count *)
  let prefix = ok_result (monitor ~id:3 "send 0 0 1\n") in
  check_bool "pending" true (field "pending" prefix = J.Int 1);
  (* malformed traces are client errors with the parser's message, and
     monitor responses are never cached (same trace, zero hits) *)
  (match
     Codec.result_of_response (monitor ~id:4 "deliver 7\n")
   with
  | Error msg ->
      check_bool "bad trace names the line" true
        (String.length msg > 0 && msg.[0] <> 'i')
  | Ok _ -> Alcotest.fail "malformed trace accepted");
  ignore (monitor ~id:5 (trace false));
  check_int "monitor results are uncached" 0
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"))

(* the lattice op: full placement payload, cached under the canonical
   digest so an alpha-renaming answers from the table *)
let test_lattice_op () =
  let t = Engine.create ~cache_capacity:16 () in
  let q ?id ?kmax p =
    Engine.handle t (envelope ?id (Codec.Lattice (pred p, kmax)))
  in
  let payload = ok_result (q fifo) in
  check_bool "payload carries the default kmax" true
    (field "kmax" payload = J.Int 3);
  check_bool "standard-plus universe" true
    (field "runs" payload = J.Int 125_768);
  (* the test's fifo forbids src-overtake only (no dst clause), so over
     realizable runs its spec collapses onto the causal tier, not the
     per-channel fifo-11 one *)
  check_bool "fifo spec members pinned" true
    (field "spec_members" payload = J.Int 63_364);
  let models =
    match field "models" payload with
    | J.List l -> l
    | _ -> Alcotest.fail "models is not a list"
  in
  check_int "all nine lattice points placed" 9 (List.length models);
  let row name =
    match
      List.find_opt
        (function
          | J.Obj fs -> List.assoc_opt "model" fs = Some (J.String name)
          | _ -> false)
        models
    with
    | Some (J.Obj fs) -> fs
    | _ -> Alcotest.fail ("no placement row for " ^ name)
  in
  check_bool "fifo-1n coincides with the spec" true
    (List.assoc "model_in_spec" (row "fifo-1n") = J.Bool true
    && List.assoc "spec_in_model" (row "fifo-1n") = J.Bool true);
  check_bool "fifo-11 admits runs outside the spec" true
    (List.assoc "model_in_spec" (row "fifo-11") = J.Bool false
    && List.assoc "spec_in_model" (row "fifo-11") = J.Bool true);
  check_bool "async is never inside a proper spec" true
    (List.assoc "model_in_spec" (row "async") = J.Bool false);
  check_bool "rsc members pinned" true
    (List.assoc "members" (row "rsc") = J.Int 41_432);
  check_bool "sufficient extremes are the one-sided fifos" true
    (field "sufficient" payload
    = J.List [ J.String "fifo-1n"; J.String "fifo-n1" ]);
  check_bool "guaranteed extreme is fifo-nn" true
    (field "guarantees" payload = J.List [ J.String "fifo-nn" ]);
  (* an alpha-renaming of the same spec: identical payload, zero compute *)
  let renamed =
    ok_result (q ~id:2 "a.s < b.s & b.r < a.r & src(a) = src(b)")
  in
  check_string "alpha-renaming answers byte-identically"
    (J.to_string payload) (J.to_string renamed);
  check_int "second placement came from the cache" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"));
  (* kmax rides the request: a wider sweep adds exactly the extra
     k-synchronous rows and does NOT collide with the kmax-3 entry *)
  let wide = ok_result (q ~id:3 ~kmax:5 fifo) in
  check_bool "payload echoes the requested kmax" true
    (field "kmax" wide = J.Int 5);
  (match field "models" wide with
  | J.List l -> check_int "kmax 5 sweeps eleven points" 11 (List.length l)
  | _ -> Alcotest.fail "kmax-5 models is not a list");
  check_int "kmax variants are cached separately (both were misses)" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"));
  let wide2 = ok_result (q ~id:4 ~kmax:5 fifo) in
  check_string "kmax-5 repeat answers byte-identically from the cache"
    (J.to_string wide) (J.to_string wide2);
  check_int "kmax-5 repeat hit its own entry" 2
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"));
  (* wire round-trip and validation of the kmax field *)
  (match
     Codec.request_of_json
       (Codec.request_to_json
          { Codec.id = 9; deadline_ms = None;
            req = Codec.Lattice (pred fifo, Some 5) })
   with
  | Ok { Codec.req = Codec.Lattice (_, Some 5); _ } -> ()
  | _ -> Alcotest.fail "kmax did not survive the wire round-trip");
  match
    Codec.request_of_json
      (J.Obj
         [ ("id", J.Int 10); ("op", J.String "lattice");
           ("pred", J.String fifo); ("kmax", J.Int 0) ])
  with
  | Error (10, _) -> ()
  | _ -> Alcotest.fail "kmax 0 was not rejected"

(* ---- the service edge: connect retry and crash-tolerant startup ---- *)

module Client = Mo_service.Client
module Server = Mo_service.Server

let tmp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mo-%s-%d.sock" tag (Unix.getpid ()))

let rm path = try Unix.unlink path with Unix.Unix_error _ -> ()

let listener path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let astring_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* the retry loop is deterministic under an injected sleep: a server that
   comes up while the client is backing off (here: the sleep hook itself
   binds the socket, playing the part of a slow-accepting, restarting
   daemon) is reached on the next attempt, with the recorded backoff
   sequence exactly the capped doubling *)
let test_client_retry_backoff () =
  let path = tmp_sock "retry" in
  rm path;
  let sleeps = ref [] in
  let server = ref None in
  let sleep d =
    sleeps := d :: !sleeps;
    if List.length !sleeps = 2 then server := Some (listener path)
  in
  let retry =
    {
      Client.attempts = 5;
      base_delay_s = 0.05;
      max_delay_s = 0.2;
      connect_timeout_s = 5.;
    }
  in
  (match Client.connect ~retry ~sleep ~socket_path:path () with
  | Ok c -> Client.close c
  | Error e -> Alcotest.fail e);
  check_bool "two backoffs before the server came up" true
    (List.rev !sleeps = [ 0.05; 0.1 ]);
  (match !server with
  | Some fd -> Unix.close fd
  | None -> Alcotest.fail "sleep hook never ran");
  rm path;
  (* no server ever: every attempt is spent, the backoff caps, and the
     failure is a clear error — not a hang, not an exception *)
  let sleeps = ref [] in
  let retry = { retry with Client.attempts = 4; max_delay_s = 0.08 } in
  (match
     Client.connect ~retry ~sleep:(fun d -> sleeps := d :: !sleeps)
       ~socket_path:path ()
   with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error e ->
      check_bool "error counts the attempts" true
        (astring_contains e "after 4 attempts"));
  check_bool "backoff doubles to the cap" true
    (List.rev !sleeps = [ 0.05; 0.08; 0.08 ]);
  (* a live server connects on the first try: no sleeps at all *)
  let fd = listener path in
  let sleeps = ref [] in
  (match
     Client.connect ~sleep:(fun d -> sleeps := d :: !sleeps)
       ~socket_path:path ()
   with
  | Ok c -> Client.close c
  | Error e -> Alcotest.fail e);
  check_bool "no backoff when the server is up" true (!sleeps = []);
  Unix.close fd;
  rm path

let test_remove_stale_socket () =
  let path = tmp_sock "stale" in
  rm path;
  (* nothing there: fine *)
  check_bool "missing path is ok" true (Server.remove_stale_socket path = Ok ());
  (* a live listener: refused, file untouched *)
  let fd = listener path in
  check_bool "live socket refused" true
    (Result.is_error (Server.remove_stale_socket path));
  check_bool "live socket not stolen" true (Sys.file_exists path);
  (* kill-9 corpse: the listener is gone but the file remains — probed
     stale and unlinked *)
  Unix.close fd;
  check_bool "corpse file still present" true (Sys.file_exists path);
  check_bool "stale socket removed" true
    (Server.remove_stale_socket path = Ok ());
  check_bool "file is gone" false (Sys.file_exists path);
  (* a regular file under the socket name is never unlinked *)
  let oc = open_out path in
  output_string oc "not a socket";
  close_out oc;
  (match Server.remove_stale_socket path with
  | Error e -> check_bool "says why" true (astring_contains e "not a socket")
  | Ok () -> Alcotest.fail "regular file accepted");
  check_bool "regular file preserved" true (Sys.file_exists path);
  rm path

(* the end-to-end smoke: daemon up, kill -9, the corpse socket file is
   left behind, a restarted daemon must come up on the same path and
   serve — then shut down cleanly, removing the file. The daemon is the
   real mopcd binary run as a subprocess ([Unix.fork] is off the table:
   the runtime forbids it once any domain has ever been spawned, and the
   batch-determinism test above spawns several; [create_process] uses
   posix_spawn and is fine). Readiness is the client's own retry loop —
   exactly what it exists for. *)
let mopcd_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "mopcd.exe"))

let spawn_daemon ?(jobs = 1) ?(extra = []) path =
  Unix.create_process mopcd_exe
    (Array.of_list
       ([
          "mopcd"; "--socket"; path; "--cache"; "16"; "--jobs";
          string_of_int jobs;
        ]
       @ extra))
    Unix.stdin Unix.stdout Unix.stderr

(* generous retry budget: the daemon may still be starting up (or, in
   the restart leg, still probing its predecessor's corpse) *)
let smoke_retry =
  {
    Client.attempts = 40;
    base_delay_s = 0.02;
    max_delay_s = 0.25;
    connect_timeout_s = 5.;
  }

let round_trip path =
  match Client.connect ~retry:smoke_retry ~socket_path:path () with
  | Error e -> Alcotest.fail ("connect: " ^ e)
  | Ok c ->
      let r = Client.call c Codec.Stats in
      Client.close c;
      (match r with
      | Ok (J.Obj fields) ->
          check_bool "stats has a cache section" true
            (List.mem_assoc "cache" fields)
      | Ok _ -> Alcotest.fail "stats payload shape"
      | Error e -> Alcotest.fail ("stats: " ^ e))

(* shut a daemon down via the protocol and reap it; SIGKILL on the way
   out if anything fails so a broken daemon cannot outlive its test *)
let graceful_shutdown ?(addr = None) pid path =
  let addr =
    match addr with Some a -> a | None -> Client.Uds path
  in
  (match Client.connect_addr ~retry:smoke_retry addr with
  | Error e ->
      Unix.kill pid Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      (match Client.call c Codec.Shutdown with
      | Ok _ -> ()
      | Error e ->
          Unix.kill pid Sys.sigkill;
          Alcotest.fail ("shutdown: " ^ e));
      Client.close c);
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "daemon did not exit cleanly"

let test_kill9_restart_smoke () =
  let path = tmp_sock "kill9" in
  rm path;
  (* first daemon: up, serving *)
  let pid1 = spawn_daemon path in
  round_trip path;
  (* kill -9: no cleanup runs, the socket file becomes a corpse *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  check_bool "kill -9 leaves the socket file" true (Sys.file_exists path);
  (* second daemon on the same path: must detect the corpse and serve *)
  let pid2 = spawn_daemon path in
  round_trip path;
  (* graceful shutdown via the protocol; the file must be cleaned up *)
  graceful_shutdown pid2 path;
  check_bool "clean shutdown removes the socket file" false
    (Sys.file_exists path)

(* the fixed request mix every daemon-determinism check pipelines *)
let pipeline_reqs () =
  [
    Codec.Classify (pred causal);
    Codec.Witness (pred causal);
    Codec.Classify (pred fifo);
    Codec.Implies (pred fifo, pred causal);
    Codec.Minimize [ pred fifo; pred causal ];
    (* alpha-renaming of causal: must come back byte-identical *)
    Codec.Classify (pred "a.s < b.s & b.r < a.r");
  ]

let render_results rs =
  String.concat "\n"
    (List.map
       (function Ok j -> J.to_string j | Error e -> "error: " ^ e)
       rs)

(* pipelined responses must be byte-identical, slot for slot, to the
   same requests issued one call at a time on the same connection *)
let test_daemon_pipelining () =
  let path = tmp_sock "pipeline" in
  rm path;
  let pid = spawn_daemon ~jobs:2 path in
  (match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
  | Error e ->
      Unix.kill pid Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      let piped = Client.call_pipelined c (pipeline_reqs ()) in
      let sequential = List.map (Client.call c) (pipeline_reqs ()) in
      check_int "one response per request"
        (List.length (pipeline_reqs ()))
        (List.length piped);
      List.iteri
        (fun i (p, s) ->
          match (p, s) with
          | Ok p, Ok s ->
              check_string
                (Printf.sprintf "slot %d" i)
                (J.to_string s) (J.to_string p)
          | Error e, _ ->
              Alcotest.fail (Printf.sprintf "pipelined slot %d: %s" i e)
          | _, Error e ->
              Alcotest.fail (Printf.sprintf "sequential slot %d: %s" i e))
        (List.combine piped sequential);
      Client.close c);
  graceful_shutdown pid path

(* daemon determinism across the dispatch pool width: the same
   pipelined stream answered byte-identically at --jobs 1, 2 and 4 *)
let test_daemon_jobs_determinism () =
  let run jobs =
    let path = tmp_sock (Printf.sprintf "det%d" jobs) in
    rm path;
    let pid = spawn_daemon ~jobs path in
    let out =
      match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
      | Error e ->
          Unix.kill pid Sys.sigkill;
          Alcotest.fail e
      | Ok c ->
          let rs = Client.call_pipelined c (pipeline_reqs ()) in
          Client.close c;
          render_results rs
    in
    graceful_shutdown pid path;
    out
  in
  let r1 = run 1 in
  check_string "jobs 1 = jobs 2" r1 (run 2);
  check_string "jobs 1 = jobs 4" r1 (run 4)

(* ---- TCP transport ---- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* spawn a TCP daemon on an ephemeral port and learn the port from its
   ready line: "mopcd: listening on 127.0.0.1:PORT (cache N, pid P)" *)
let spawn_daemon_tcp () =
  let rd, wr = Unix.pipe () in
  let pid =
    Unix.create_process mopcd_exe
      [| "mopcd"; "--tcp"; "127.0.0.1:0"; "--cache"; "16"; "--jobs"; "2" |]
      Unix.stdin wr Unix.stderr
  in
  Unix.close wr;
  let buf = Buffer.create 80 in
  let b = Bytes.create 1 in
  let rec line () =
    match Unix.read rd b 0 1 with
    | 0 -> ()
    | _ ->
        if Bytes.get b 0 <> '\n' then begin
          Buffer.add_char buf (Bytes.get b 0);
          line ()
        end
  in
  line ();
  Unix.close rd;
  let s = Buffer.contents buf in
  match find_sub s " (" with
  | None ->
      Unix.kill pid Sys.sigkill;
      Alcotest.fail ("no ready line from the TCP daemon: " ^ s)
  | Some stop -> (
      let addr = String.sub s 0 stop in
      match String.rindex_opt addr ':' with
      | None ->
          Unix.kill pid Sys.sigkill;
          Alcotest.fail ("ready line has no port: " ^ s)
      | Some i -> (
          match
            int_of_string_opt
              (String.sub addr (i + 1) (String.length addr - i - 1))
          with
          | Some port -> (pid, port)
          | None ->
              Unix.kill pid Sys.sigkill;
              Alcotest.fail ("ready line has a bad port: " ^ s)))

let test_tcp_round_trip () =
  let pid, port = spawn_daemon_tcp () in
  let addr = Client.Tcp ("127.0.0.1", port) in
  (match Client.connect_addr ~retry:smoke_retry addr with
  | Error e ->
      Unix.kill pid Sys.sigkill;
      Alcotest.fail ("connect: " ^ e)
  | Ok c ->
      (* sequential and pipelined round-trips over the same stream *)
      (match Client.call c (Codec.Classify (pred causal)) with
      | Ok payload ->
          check_bool "classify over TCP" true
            (field "implementable" payload = J.Bool true)
      | Error e ->
          Unix.kill pid Sys.sigkill;
          Alcotest.fail ("classify: " ^ e));
      let rs = Client.call_pipelined c (pipeline_reqs ()) in
      List.iteri
        (fun i r ->
          match r with
          | Ok _ -> ()
          | Error e ->
              Unix.kill pid Sys.sigkill;
              Alcotest.fail (Printf.sprintf "pipelined TCP slot %d: %s" i e))
        rs;
      Client.close c);
  (* kill -9 a TCP daemon: no corpse file to trip over — a fresh daemon
     binds a fresh ephemeral port and serves immediately *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  let pid2, port2 = spawn_daemon_tcp () in
  (match
     Client.connect_addr ~retry:smoke_retry
       (Client.Tcp ("127.0.0.1", port2))
   with
  | Error e ->
      Unix.kill pid2 Sys.sigkill;
      Alcotest.fail ("post-kill connect: " ^ e)
  | Ok c ->
      (match Client.call c Codec.Stats with
      | Ok _ -> ()
      | Error e ->
          Unix.kill pid2 Sys.sigkill;
          Alcotest.fail ("post-kill stats: " ^ e));
      Client.close c);
  graceful_shutdown ~addr:(Some (Client.Tcp ("127.0.0.1", port2))) pid2
    "(tcp)"

(* ---- warm restart via --persist ---- *)

let cache_counter stats name =
  match field "cache" stats with
  | J.Obj fields -> (
      match List.assoc_opt name fields with
      | Some (J.Int n) -> n
      | _ -> Alcotest.fail ("cache stats lack " ^ name))
  | _ -> Alcotest.fail "stats payload lacks a cache object"

let test_daemon_persist_warm_restart () =
  let path = tmp_sock "persist" in
  let snap = Filename.temp_file "mo-snap" ".json" in
  Sys.remove snap;
  rm path;
  (* first life: compute one classification, shut down → snapshot *)
  let pid1 = spawn_daemon ~extra:[ "--persist"; snap ] path in
  (match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
  | Error e ->
      Unix.kill pid1 Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      (match Client.call c (Codec.Classify (pred causal)) with
      | Ok _ -> ()
      | Error e ->
          Unix.kill pid1 Sys.sigkill;
          Alcotest.fail ("classify: " ^ e));
      Client.close c);
  graceful_shutdown pid1 path;
  check_bool "shutdown wrote the snapshot" true (Sys.file_exists snap);
  (* second life: starts warm, first repeat query is a cache hit *)
  let pid2 = spawn_daemon ~extra:[ "--persist"; snap ] path in
  (match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
  | Error e ->
      Unix.kill pid2 Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      let stats () =
        match Client.call c Codec.Stats with
        | Ok s -> s
        | Error e ->
            Unix.kill pid2 Sys.sigkill;
            Alcotest.fail ("stats: " ^ e)
      in
      check_bool "restart loaded the table" true
        (cache_counter (stats ()) "loaded" >= 1);
      (* an alpha-renaming of the persisted predicate: same digest *)
      (match Client.call c (Codec.Classify (pred "a.s < b.s & b.r < a.r")) with
      | Ok payload ->
          check_bool "warm answer is implementable" true
            (field "implementable" payload = J.Bool true)
      | Error e ->
          Unix.kill pid2 Sys.sigkill;
          Alcotest.fail ("warm classify: " ^ e));
      let s = stats () in
      check_bool "warm restart answered from the table" true
        (cache_counter s "hits" >= 1);
      check_int "nothing recomputed" 0 (cache_counter s "misses");
      Client.close c);
  graceful_shutdown pid2 path;
  Sys.remove snap

let metrics_counter stats name =
  match field "metrics" stats with
  | J.Obj fields -> (
      match List.assoc_opt name fields with
      | Some (J.Obj mf) -> (
          match List.assoc_opt "value" mf with Some (J.Int n) -> n | _ -> 0)
      | _ -> 0)
  | _ -> Alcotest.fail "stats payload lacks a metrics object"

(* --persist-interval: the accept loop writes background snapshots on a
   timer, so even a kill -9 (no shutdown save) leaves a usable table
   behind for the next life *)
let test_daemon_persist_interval () =
  let path = tmp_sock "interval" in
  let snap = Filename.temp_file "mo-snapi" ".json" in
  Sys.remove snap;
  rm path;
  let pid1 =
    spawn_daemon
      ~extra:[ "--persist"; snap; "--persist-interval"; "0.2" ]
      path
  in
  (match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
  | Error e ->
      Unix.kill pid1 Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      (match Client.call c (Codec.Classify (pred causal)) with
      | Ok _ -> ()
      | Error e ->
          Unix.kill pid1 Sys.sigkill;
          Alcotest.fail ("classify: " ^ e));
      (* the select timeout fires the save with no client traffic at
         all — but the very first save can predate the classify above
         (an empty table snapshots to a valid file), so wait for a
         snapshot big enough to hold the entry, not just for the file *)
      let deadline = Unix.gettimeofday () +. 10. in
      let has_entry () =
        match Unix.stat snap with
        | { Unix.st_size; _ } -> st_size > 64
        | exception Unix.Unix_error _ -> false
      in
      let rec wait () =
        if has_entry () then ()
        else if Unix.gettimeofday () > deadline then begin
          Unix.kill pid1 Sys.sigkill;
          Alcotest.fail "no background snapshot with the entry within 10s"
        end
        else begin
          Unix.sleepf 0.05;
          wait ()
        end
      in
      wait ();
      (match Client.call c Codec.Stats with
      | Ok s ->
          check_bool "svc.persist.saves counted" true
            (metrics_counter s "svc.persist.saves" >= 1)
      | Error e ->
          Unix.kill pid1 Sys.sigkill;
          Alcotest.fail ("stats: " ^ e));
      Client.close c);
  (* kill -9: the shutdown save never runs, the background one remains *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  check_bool "snapshot survives the crash" true (Sys.file_exists snap);
  (* the restart comes up warm from the background snapshot, over the
     predecessor's corpse socket *)
  let pid2 = spawn_daemon ~extra:[ "--persist"; snap ] path in
  (match Client.connect_addr ~retry:smoke_retry (Client.Uds path) with
  | Error e ->
      Unix.kill pid2 Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      (match Client.call c Codec.Stats with
      | Ok s ->
          check_bool "restart loaded the background snapshot" true
            (cache_counter s "loaded" >= 1)
      | Error e ->
          Unix.kill pid2 Sys.sigkill;
          Alcotest.fail ("warm stats: " ^ e));
      Client.close c);
  graceful_shutdown pid2 path;
  Sys.remove snap

let test_request_json_roundtrip () =
  let reqs =
    [
      envelope ~id:1 (Codec.Classify (pred causal));
      envelope ~id:2 ~deadline_ms:250 (Codec.Implies (pred fifo, pred causal));
      envelope ~id:3 (Codec.Minimize [ pred fifo; pred causal ]);
      envelope ~id:4 (Codec.Witness (pred fifo));
      envelope ~id:5 Codec.Stats;
      envelope ~id:6 Codec.Shutdown;
      envelope ~id:10 (Codec.Monitor (pred fifo, "send 0 0 1\n", None));
      envelope ~id:11 (Codec.Monitor (pred fifo, "send 0 0 1\n", Some 8));
      envelope ~id:7
        (Codec.Batch
           [ envelope ~id:8 (Codec.Classify (pred causal));
             envelope ~id:9 Codec.Stats ]);
    ]
  in
  List.iter
    (fun e ->
      match Codec.request_of_json (Codec.request_to_json e) with
      | Ok e' ->
          check_string
            (Printf.sprintf "request %d" e.Codec.id)
            (J.to_string (Codec.request_to_json e))
            (J.to_string (Codec.request_to_json e'))
      | Error (_, msg) -> Alcotest.fail msg)
    reqs;
  (* batches do not nest *)
  let nested =
    Codec.request_to_json
      (envelope ~id:1
         (Codec.Batch [ envelope ~id:2 (Codec.Batch []) ]))
  in
  match Codec.request_of_json nested with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested batch accepted"

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
          Alcotest.test_case "max_len" `Quick test_frame_max_len;
          Alcotest.test_case "nonblocking decode-ahead" `Quick
            test_frame_nonblock;
          Alcotest.test_case "request json roundtrip" `Quick
            test_request_json_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru accounting" `Quick test_cache_lru;
          Alcotest.test_case "capacity 0" `Quick test_cache_disabled;
          Alcotest.test_case "striping" `Quick test_cache_striping;
          Alcotest.test_case "striping under concurrency" `Quick
            test_cache_striping_concurrent;
          Alcotest.test_case "snapshot and restore" `Quick
            test_cache_snapshot_restore;
          Alcotest.test_case "entry ages" `Quick test_cache_age_stats;
        ] );
      ( "persist",
        [
          Alcotest.test_case "snapshot file roundtrip" `Quick
            test_persist_roundtrip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "canonical cache keying" `Quick
            test_engine_cache_keying;
          Alcotest.test_case "malformed requests" `Quick test_engine_malformed;
          Alcotest.test_case "deadlines" `Quick test_engine_deadline;
          Alcotest.test_case "batch determinism" `Quick
            test_batch_determinism;
          Alcotest.test_case "shutdown semantics" `Quick
            test_shutdown_semantics;
          Alcotest.test_case "payload shapes" `Quick test_payload_shapes;
          Alcotest.test_case "monitor op" `Quick test_monitor_op;
          Alcotest.test_case "lattice op" `Quick test_lattice_op;
          Alcotest.test_case "pipelined groups" `Quick test_pipelined_group;
          Alcotest.test_case "warm restart" `Quick test_engine_warm_restart;
        ] );
      ( "edge",
        [
          Alcotest.test_case "client retry backoff" `Quick
            test_client_retry_backoff;
          Alcotest.test_case "stale socket probe" `Quick
            test_remove_stale_socket;
          Alcotest.test_case "kill -9 then restart" `Quick
            test_kill9_restart_smoke;
          Alcotest.test_case "daemon pipelining" `Quick
            test_daemon_pipelining;
          Alcotest.test_case "jobs determinism" `Quick
            test_daemon_jobs_determinism;
          Alcotest.test_case "tcp transport" `Quick test_tcp_round_trip;
          Alcotest.test_case "persist warm restart" `Quick
            test_daemon_persist_warm_restart;
          Alcotest.test_case "persist interval survives kill -9" `Quick
            test_daemon_persist_interval;
        ] );
    ]
