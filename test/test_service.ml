(* The mopcd service stack, transport layer by transport layer: frame
   codec (roundtrip, truncation, garbage headers), LRU decision cache
   (hit/miss/eviction accounting), and the request engine (canonical
   cache keying, deadline admission with an injected clock, malformed
   requests answered — never raised — and batch responses byte-identical
   for every job count). *)

module J = Mo_obs.Jsonb
module Codec = Mo_service.Codec
module Cache = Mo_service.Cache
module Engine = Mo_service.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let pred = Mo_core.Parse.predicate_exn
let causal = "x.s < y.s & y.r < x.r"
let fifo = "x.s < y.s & y.r < x.r & src(x) = src(y)"

(* ---- framing ---- *)

let with_pipe f =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () -> f rd wr)

let test_frame_roundtrip () =
  with_pipe (fun rd wr ->
      let docs =
        [
          J.Obj [ ("id", J.Int 1); ("op", J.String "stats") ];
          J.Obj [ ("id", J.Int 2); ("pred", J.String causal) ];
          J.List [ J.Int 1; J.Null; J.String "x\ny" ];
        ]
      in
      List.iter (Codec.write_frame wr) docs;
      Unix.close wr;
      let r = Codec.reader rd in
      List.iter
        (fun doc ->
          match Codec.read_frame r with
          | Ok (Some got) ->
              check_string "frame" (J.to_string doc) (J.to_string got)
          | Ok None -> Alcotest.fail "premature end of stream"
          | Error e -> Alcotest.fail e)
        docs;
      match Codec.read_frame r with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "phantom frame"
      | Error e -> Alcotest.fail ("clean EOF reported as: " ^ e))

let write_all fd s =
  ignore (Unix.write_substring fd s 0 (String.length s))

let expect_frame_error name text =
  with_pipe (fun rd wr ->
      write_all wr text;
      Unix.close wr;
      match Codec.read_frame (Codec.reader rd) with
      | Error _ -> ()
      | Ok None -> Alcotest.fail (name ^ ": reported clean EOF")
      | Ok (Some _) -> Alcotest.fail (name ^ ": accepted"))

let test_frame_malformed () =
  expect_frame_error "garbage header" "notanumber\n{}\n";
  expect_frame_error "negative length" "-4\n{}\n";
  expect_frame_error "truncated payload" "100\n{\"id\":1}";
  expect_frame_error "bad json" "9\nnot json!\n";
  expect_frame_error "unterminated header" "123";
  (* an oversized declared length is rejected from the header alone *)
  expect_frame_error "oversized frame"
    (string_of_int (Codec.default_max_frame + 1) ^ "\n")

let test_frame_max_len () =
  with_pipe (fun rd wr ->
      let doc = J.Obj [ ("blob", J.String (String.make 64 'a')) ] in
      write_all wr (Codec.encode_frame doc);
      Unix.close wr;
      match Codec.read_frame ~max_len:16 (Codec.reader rd) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "frame above max_len accepted")

(* ---- cache ---- *)

let test_cache_lru () =
  let reg = Mo_obs.Metrics.create () in
  let c = Cache.create ~capacity:2 ~registry:reg () in
  check_bool "empty miss" true (Cache.find c "a" = None);
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  check_bool "a hit" true (Cache.find c "a" = Some 1);
  (* "b" is now least-recently-used; inserting "c" evicts it *)
  Cache.put c "c" 3;
  check_bool "b evicted" true (Cache.find c "b" = None);
  check_bool "a survives" true (Cache.find c "a" = Some 1);
  check_bool "c present" true (Cache.find c "c" = Some 3);
  check_int "hits" 3 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c);
  check_int "evictions" 1 (Cache.evictions c);
  check_int "size" 2 (Cache.size c);
  check_int "registry hits" 3
    (Option.value ~default:(-1) (Mo_obs.Metrics.value reg "svc.cache_hits"));
  check_int "registry evictions" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value reg "svc.cache_evictions"))

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 () in
  Cache.put c "a" 1;
  check_bool "nothing stored" true (Cache.find c "a" = None);
  check_int "size" 0 (Cache.size c);
  check_int "misses" 1 (Cache.misses c)

(* ---- engine ---- *)

let envelope ?deadline_ms ?(id = 1) req =
  { Codec.id; deadline_ms; req }

let ok_result resp =
  match Codec.result_of_response resp with
  | Ok payload -> payload
  | Error e -> Alcotest.fail ("error response: " ^ e)

let field name = function
  | J.Obj fields -> List.assoc name fields
  | _ -> Alcotest.fail "payload is not an object"

let test_engine_cache_keying () =
  let t = Engine.create ~cache_capacity:16 () in
  let r1 =
    ok_result (Engine.handle t (envelope (Codec.Classify (pred causal))))
  in
  (* an alpha-renaming of the same predicate must hit the same entry
     and produce the byte-identical payload *)
  let r2 =
    ok_result
      (Engine.handle t
         (envelope ~id:2 (Codec.Classify (pred "a.s < b.s & b.r < a.r"))))
  in
  check_string "alpha-equivalent payloads" (J.to_string r1) (J.to_string r2);
  check_int "one miss" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_misses"));
  check_int "one hit" 1
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"));
  check_bool "implementable" true
    (field "implementable" r1 = J.Bool true);
  match field "class" r1 with
  | J.String c -> check_string "class" "tagged" c
  | _ -> Alcotest.fail "class is not a string"

let test_engine_malformed () =
  let t = Engine.create () in
  let reject name json =
    match Engine.handle_json t json with
    | J.Obj fields ->
        check_bool (name ^ ": ok=false") true
          (List.assoc "ok" fields = J.Bool false)
    | _ -> Alcotest.fail (name ^ ": response is not an object")
  in
  reject "not an object" (J.List []);
  reject "no op" (J.Obj [ ("id", J.Int 3) ]);
  reject "unknown op" (J.Obj [ ("id", J.Int 3); ("op", J.String "frob") ]);
  reject "bad predicate"
    (J.Obj
       [ ("id", J.Int 3); ("op", J.String "classify");
         ("pred", J.String "x.s <") ]);
  reject "implies missing arg"
    (J.Obj
       [ ("id", J.Int 3); ("op", J.String "implies");
         ("pred", J.String causal) ])

let test_engine_deadline () =
  let now = ref 0. in
  let t = Engine.create ~clock:(fun () -> !now) () in
  let req = Codec.Classify (pred causal) in
  (* a deadline in the future is admitted... *)
  (match
     Codec.result_of_response
       (Engine.handle t (envelope ~deadline_ms:50 req))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("live deadline rejected: " ^ e));
  (* ...but when 10 s pass between arrival and admission, a 50 ms
     deadline has lapsed: rejected without being computed, while its
     undeadlined batch sibling is unaffected *)
  now := 10.;
  let batch =
    Codec.Batch
      [ envelope ~id:7 ~deadline_ms:50 req; envelope ~id:8 req ]
  in
  match ok_result (Engine.handle t ~received:0. (envelope ~id:9 batch)) with
  | payload -> (
      match field "responses" payload with
      | J.List [ first; second ] ->
          (match Codec.result_of_response first with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "expired deadline admitted");
          (match Codec.result_of_response second with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("undeadlined sibling failed: " ^ e));
          check_int "deadline counter" 1
            (Option.value ~default:(-1)
               (Mo_obs.Metrics.value (Engine.registry t)
                  "svc.deadline_expired"))
      | _ -> Alcotest.fail "batch did not return two responses")

let batch_workload () =
  let preds =
    [
      causal; fifo; "a.s < b.s & b.r < a.r" (* causal, renamed *);
      "x.s < y.r"; "x.r < x.s"; "x.s < y.r & y.s < x.r";
    ]
  in
  List.concat_map
    (fun p ->
      [
        envelope ~id:0 (Codec.Classify (pred p));
        envelope ~id:0 (Codec.Witness (pred p));
      ])
    preds
  @ [
      envelope ~id:0 (Codec.Implies (pred fifo, pred causal));
      envelope ~id:0 (Codec.Minimize [ pred fifo; pred causal ]);
    ]
  |> List.mapi (fun i e -> { e with Codec.id = i + 1 })

let run_batch ~jobs =
  let pool = Mo_par.Pool.create ~jobs () in
  let t = Engine.create ~pool () in
  let resp =
    Engine.handle t (envelope ~id:99 (Codec.Batch (batch_workload ())))
  in
  (J.to_string resp, Engine.cache_stats t)

let test_batch_determinism () =
  let r1, s1 = run_batch ~jobs:1 in
  let r2, s2 = run_batch ~jobs:2 in
  let r4, s4 = run_batch ~jobs:4 in
  check_string "jobs 1 = jobs 2" r1 r2;
  check_string "jobs 1 = jobs 4" r1 r4;
  (* hit/miss accounting is part of the contract, not just payloads *)
  check_string "stats jobs 1 = jobs 2" (J.to_string s1) (J.to_string s2);
  check_string "stats jobs 1 = jobs 4" (J.to_string s1) (J.to_string s4)

let test_shutdown_semantics () =
  let t = Engine.create () in
  (* a top-level shutdown is acknowledged and raises the stop flag *)
  let resp, stop =
    Engine.serve_json t
      (Codec.request_to_json (envelope ~id:5 Codec.Shutdown))
  in
  check_bool "top-level shutdown stops the server" true stop;
  check_bool "shutdown acknowledged" true
    (field "shutdown" (ok_result resp) = J.Bool true);
  (* nested in a batch it is an error and must NOT stop the server *)
  let resp, stop =
    Engine.serve_json t
      (Codec.request_to_json
         (envelope ~id:6 (Codec.Batch [ envelope ~id:7 Codec.Shutdown ])))
  in
  check_bool "batched shutdown does not stop the server" false stop;
  (match field "responses" (ok_result resp) with
  | J.List [ member ] -> (
      match Codec.result_of_response member with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "shutdown inside a batch was accepted")
  | _ -> Alcotest.fail "batch did not return one response");
  (* ordinary requests report no shutdown *)
  let _, stop =
    Engine.serve_json t
      (Codec.request_to_json (envelope ~id:8 Codec.Stats))
  in
  check_bool "stats does not stop the server" false stop

let test_payload_shapes () =
  let t = Engine.create () in
  let imp =
    ok_result
      (Engine.handle t
         (envelope (Codec.Implies (pred fifo, pred causal))))
  in
  (* B_fifo adds a guard to B_causal's cycle, so B_fifo ⟹ B_causal
     (and X_causal ⊆ X_fifo), but not conversely *)
  check_bool "fifo pattern implies causal pattern" true
    (field "forward" imp = J.Bool true);
  check_bool "converse fails" true (field "backward" imp = J.Bool false);
  let wit =
    ok_result (Engine.handle t (envelope ~id:2 (Codec.Witness (pred causal))))
  in
  check_bool "causal has a witness" true (field "witness" wit = J.Bool true);
  let min_ =
    ok_result
      (Engine.handle t
         (envelope ~id:3 (Codec.Minimize [ pred fifo; pred causal ])))
  in
  (match field "kept" min_ with
  | J.List kept -> check_bool "minimize kept >= 1" true (List.length kept >= 1)
  | _ -> Alcotest.fail "kept is not a list");
  let stats = ok_result (Engine.handle t (envelope ~id:4 Codec.Stats)) in
  match field "cache" stats with
  | J.Obj fields -> check_bool "cache stats" true (List.mem_assoc "hits" fields)
  | _ -> Alcotest.fail "stats payload lacks a cache object"

let test_monitor_op () =
  let t = Engine.create ~cache_capacity:16 () in
  let trace good =
    if good then "send 0 0 1\nsend 1 0 1\ndeliver 0\ndeliver 1\n"
    else "send 0 0 1\nsend 1 0 1\ndeliver 1\ndeliver 0\n"
  in
  let monitor ?id text =
    Engine.handle t (envelope ?id (Codec.Monitor (pred fifo, text, None)))
  in
  let clean = ok_result (monitor (trace true)) in
  check_bool "clean trace: no violation" true
    (field "violation" clean = J.Null);
  check_bool "events counted" true (field "events" clean = J.Int 4);
  let bad = ok_result (monitor ~id:2 (trace false)) in
  (match field "violation" bad with
  | J.Obj fields ->
      check_bool "violation at the completing delivery" true
        (List.assoc "at" fields = J.Int 2);
      check_bool "witness names both messages" true
        (List.assoc "witness" fields = J.List [ J.Int 0; J.Int 1 ])
  | _ -> Alcotest.fail "violating trace reported null");
  (* prefixes are fine: pending messages just show up in the count *)
  let prefix = ok_result (monitor ~id:3 "send 0 0 1\n") in
  check_bool "pending" true (field "pending" prefix = J.Int 1);
  (* malformed traces are client errors with the parser's message, and
     monitor responses are never cached (same trace, zero hits) *)
  (match
     Codec.result_of_response (monitor ~id:4 "deliver 7\n")
   with
  | Error msg ->
      check_bool "bad trace names the line" true
        (String.length msg > 0 && msg.[0] <> 'i')
  | Ok _ -> Alcotest.fail "malformed trace accepted");
  ignore (monitor ~id:5 (trace false));
  check_int "monitor results are uncached" 0
    (Option.value ~default:(-1)
       (Mo_obs.Metrics.value (Engine.registry t) "svc.cache_hits"))

(* ---- the service edge: connect retry and crash-tolerant startup ---- *)

module Client = Mo_service.Client
module Server = Mo_service.Server

let tmp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mo-%s-%d.sock" tag (Unix.getpid ()))

let rm path = try Unix.unlink path with Unix.Unix_error _ -> ()

let listener path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 8;
  fd

let astring_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* the retry loop is deterministic under an injected sleep: a server that
   comes up while the client is backing off (here: the sleep hook itself
   binds the socket, playing the part of a slow-accepting, restarting
   daemon) is reached on the next attempt, with the recorded backoff
   sequence exactly the capped doubling *)
let test_client_retry_backoff () =
  let path = tmp_sock "retry" in
  rm path;
  let sleeps = ref [] in
  let server = ref None in
  let sleep d =
    sleeps := d :: !sleeps;
    if List.length !sleeps = 2 then server := Some (listener path)
  in
  let retry =
    {
      Client.attempts = 5;
      base_delay_s = 0.05;
      max_delay_s = 0.2;
      connect_timeout_s = 5.;
    }
  in
  (match Client.connect ~retry ~sleep ~socket_path:path () with
  | Ok c -> Client.close c
  | Error e -> Alcotest.fail e);
  check_bool "two backoffs before the server came up" true
    (List.rev !sleeps = [ 0.05; 0.1 ]);
  (match !server with
  | Some fd -> Unix.close fd
  | None -> Alcotest.fail "sleep hook never ran");
  rm path;
  (* no server ever: every attempt is spent, the backoff caps, and the
     failure is a clear error — not a hang, not an exception *)
  let sleeps = ref [] in
  let retry = { retry with Client.attempts = 4; max_delay_s = 0.08 } in
  (match
     Client.connect ~retry ~sleep:(fun d -> sleeps := d :: !sleeps)
       ~socket_path:path ()
   with
  | Ok _ -> Alcotest.fail "connected to nothing"
  | Error e ->
      check_bool "error counts the attempts" true
        (astring_contains e "after 4 attempts"));
  check_bool "backoff doubles to the cap" true
    (List.rev !sleeps = [ 0.05; 0.08; 0.08 ]);
  (* a live server connects on the first try: no sleeps at all *)
  let fd = listener path in
  let sleeps = ref [] in
  (match
     Client.connect ~sleep:(fun d -> sleeps := d :: !sleeps)
       ~socket_path:path ()
   with
  | Ok c -> Client.close c
  | Error e -> Alcotest.fail e);
  check_bool "no backoff when the server is up" true (!sleeps = []);
  Unix.close fd;
  rm path

let test_remove_stale_socket () =
  let path = tmp_sock "stale" in
  rm path;
  (* nothing there: fine *)
  check_bool "missing path is ok" true (Server.remove_stale_socket path = Ok ());
  (* a live listener: refused, file untouched *)
  let fd = listener path in
  check_bool "live socket refused" true
    (Result.is_error (Server.remove_stale_socket path));
  check_bool "live socket not stolen" true (Sys.file_exists path);
  (* kill-9 corpse: the listener is gone but the file remains — probed
     stale and unlinked *)
  Unix.close fd;
  check_bool "corpse file still present" true (Sys.file_exists path);
  check_bool "stale socket removed" true
    (Server.remove_stale_socket path = Ok ());
  check_bool "file is gone" false (Sys.file_exists path);
  (* a regular file under the socket name is never unlinked *)
  let oc = open_out path in
  output_string oc "not a socket";
  close_out oc;
  (match Server.remove_stale_socket path with
  | Error e -> check_bool "says why" true (astring_contains e "not a socket")
  | Ok () -> Alcotest.fail "regular file accepted");
  check_bool "regular file preserved" true (Sys.file_exists path);
  rm path

(* the end-to-end smoke: daemon up, kill -9, the corpse socket file is
   left behind, a restarted daemon must come up on the same path and
   serve — then shut down cleanly, removing the file. The daemon is the
   real mopcd binary run as a subprocess ([Unix.fork] is off the table:
   the runtime forbids it once any domain has ever been spawned, and the
   batch-determinism test above spawns several; [create_process] uses
   posix_spawn and is fine). Readiness is the client's own retry loop —
   exactly what it exists for. *)
let mopcd_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "mopcd.exe"))

let spawn_daemon path =
  Unix.create_process mopcd_exe
    [| "mopcd"; "--socket"; path; "--cache"; "16"; "--jobs"; "1" |]
    Unix.stdin Unix.stdout Unix.stderr

(* generous retry budget: the daemon may still be starting up (or, in
   the restart leg, still probing its predecessor's corpse) *)
let smoke_retry =
  {
    Client.attempts = 40;
    base_delay_s = 0.02;
    max_delay_s = 0.25;
    connect_timeout_s = 5.;
  }

let round_trip path =
  match Client.connect ~retry:smoke_retry ~socket_path:path () with
  | Error e -> Alcotest.fail ("connect: " ^ e)
  | Ok c ->
      let r = Client.call c Codec.Stats in
      Client.close c;
      (match r with
      | Ok (J.Obj fields) ->
          check_bool "stats has a cache section" true
            (List.mem_assoc "cache" fields)
      | Ok _ -> Alcotest.fail "stats payload shape"
      | Error e -> Alcotest.fail ("stats: " ^ e))

let test_kill9_restart_smoke () =
  let path = tmp_sock "kill9" in
  rm path;
  (* first daemon: up, serving *)
  let pid1 = spawn_daemon path in
  round_trip path;
  (* kill -9: no cleanup runs, the socket file becomes a corpse *)
  Unix.kill pid1 Sys.sigkill;
  ignore (Unix.waitpid [] pid1);
  check_bool "kill -9 leaves the socket file" true (Sys.file_exists path);
  (* second daemon on the same path: must detect the corpse and serve *)
  let pid2 = spawn_daemon path in
  round_trip path;
  (* graceful shutdown via the protocol; the file must be cleaned up *)
  (match Client.connect ~retry:smoke_retry ~socket_path:path () with
  | Error e ->
      Unix.kill pid2 Sys.sigkill;
      Alcotest.fail e
  | Ok c ->
      (match Client.call c Codec.Shutdown with
      | Ok _ -> ()
      | Error e ->
          Unix.kill pid2 Sys.sigkill;
          Alcotest.fail ("shutdown: " ^ e));
      Client.close c);
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "restarted daemon did not exit cleanly");
  check_bool "clean shutdown removes the socket file" false
    (Sys.file_exists path)

let test_request_json_roundtrip () =
  let reqs =
    [
      envelope ~id:1 (Codec.Classify (pred causal));
      envelope ~id:2 ~deadline_ms:250 (Codec.Implies (pred fifo, pred causal));
      envelope ~id:3 (Codec.Minimize [ pred fifo; pred causal ]);
      envelope ~id:4 (Codec.Witness (pred fifo));
      envelope ~id:5 Codec.Stats;
      envelope ~id:6 Codec.Shutdown;
      envelope ~id:10 (Codec.Monitor (pred fifo, "send 0 0 1\n", None));
      envelope ~id:11 (Codec.Monitor (pred fifo, "send 0 0 1\n", Some 8));
      envelope ~id:7
        (Codec.Batch
           [ envelope ~id:8 (Codec.Classify (pred causal));
             envelope ~id:9 Codec.Stats ]);
    ]
  in
  List.iter
    (fun e ->
      match Codec.request_of_json (Codec.request_to_json e) with
      | Ok e' ->
          check_string
            (Printf.sprintf "request %d" e.Codec.id)
            (J.to_string (Codec.request_to_json e))
            (J.to_string (Codec.request_to_json e'))
      | Error (_, msg) -> Alcotest.fail msg)
    reqs;
  (* batches do not nest *)
  let nested =
    Codec.request_to_json
      (envelope ~id:1
         (Codec.Batch [ envelope ~id:2 (Codec.Batch []) ]))
  in
  match Codec.request_of_json nested with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested batch accepted"

let () =
  Alcotest.run "service"
    [
      ( "codec",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
          Alcotest.test_case "max_len" `Quick test_frame_max_len;
          Alcotest.test_case "request json roundtrip" `Quick
            test_request_json_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru accounting" `Quick test_cache_lru;
          Alcotest.test_case "capacity 0" `Quick test_cache_disabled;
        ] );
      ( "engine",
        [
          Alcotest.test_case "canonical cache keying" `Quick
            test_engine_cache_keying;
          Alcotest.test_case "malformed requests" `Quick test_engine_malformed;
          Alcotest.test_case "deadlines" `Quick test_engine_deadline;
          Alcotest.test_case "batch determinism" `Quick
            test_batch_determinism;
          Alcotest.test_case "shutdown semantics" `Quick
            test_shutdown_semantics;
          Alcotest.test_case "payload shapes" `Quick test_payload_shapes;
          Alcotest.test_case "monitor op" `Quick test_monitor_op;
        ] );
      ( "edge",
        [
          Alcotest.test_case "client retry backoff" `Quick
            test_client_retry_backoff;
          Alcotest.test_case "stale socket probe" `Quick
            test_remove_stale_socket;
          Alcotest.test_case "kill -9 then restart" `Quick
            test_kill9_restart_smoke;
        ] );
    ]
