(* mopcd — the long-lived classification service.

   Serves the library's decision procedures (classify, implies,
   minimize, witness) over a Unix-domain socket with a canonical-form
   decision cache in front, so repeated queries — the common case in
   real specification traffic, which repeats the same shapes modulo
   variable renaming — cost a digest and a hash lookup instead of a
   cycle enumeration. `mopc query` is the matching client. *)

open Cmdliner
module T = Cmdliner.Term

let serve socket cache_capacity jobs recv_timeout max_requests verbose =
  if jobs < 0 then begin
    Format.eprintf "--jobs must be >= 0@.";
    exit 1
  end;
  if cache_capacity < 0 then begin
    Format.eprintf "--cache must be >= 0@.";
    exit 1
  end;
  if max_requests < 1 then begin
    Format.eprintf "--max-requests must be >= 1@.";
    exit 1
  end;
  let cfg =
    {
      (Mo_service.Server.default_config ~socket_path:socket) with
      Mo_service.Server.cache_capacity;
      jobs = (if jobs = 0 then None else Some jobs);
      recv_timeout_s = recv_timeout;
      max_conn_requests = max_requests;
    }
  in
  let on_ready () =
    Printf.printf "mopcd: listening on %s (cache %d, pid %d)\n%!" socket
      cache_capacity (Unix.getpid ())
  in
  if verbose then
    Printf.eprintf "mopcd: cache %d entries, read timeout %.1fs\n%!"
      cache_capacity recv_timeout;
  match Mo_service.Server.run ~on_ready cfg with
  | () ->
      Printf.printf "mopcd: shut down cleanly\n%!";
      0
  | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "mopcd: cannot serve on %s: %s %s@." socket
        (Unix.error_message e) arg;
      1
  | exception Failure e ->
      (* startup refused: the socket path is owned by a live daemon, or
         is not a socket at all *)
      Format.eprintf "mopcd: %s@." e;
      1

let socket_arg =
  Arg.(
    value
    & opt string "mopcd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on")

let cache_arg =
  Arg.(
    value
    & opt int 4096
    & info [ "cache" ] ~docv:"N"
        ~doc:"decision cache capacity in entries (0 disables caching)")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains for batch requests; 0 means the pool default \
           (the $(b,MO_JOBS) variable, else one per core)")

let timeout_arg =
  Arg.(
    value
    & opt float 10.
    & info [ "recv-timeout" ] ~docv:"SECONDS"
        ~doc:"close a connection after this long without a frame")

let max_requests_arg =
  Arg.(
    value
    & opt int 10_000
    & info [ "max-requests" ] ~docv:"N"
        ~doc:
          "hang up a connection after serving this many requests, so one \
           client cannot monopolize the single-dispatch daemon (clients \
           reconnect)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"log to stderr")

let main_cmd =
  let doc =
    "serve message-ordering classification queries over a Unix-domain \
     socket (client: mopc query)"
  in
  Cmd.v
    (Cmd.info "mopcd" ~version:"1.0.0" ~doc)
    T.(
      const serve $ socket_arg $ cache_arg $ jobs_arg $ timeout_arg
      $ max_requests_arg $ verbose_arg)

let () = exit (Cmd.eval' main_cmd)
