(* mopcd — the long-lived classification service.

   Serves the library's decision procedures (classify, implies,
   minimize, witness) over a Unix-domain socket or TCP with a
   canonical-form decision cache in front, so repeated queries — the
   common case in real specification traffic, which repeats the same
   shapes modulo variable renaming — cost a digest and a hash lookup
   instead of a cycle enumeration. Connections are dispatched over a
   pool of worker domains (--jobs) and requests within a connection are
   pipelined; --persist FILE carries the decision table across
   restarts. `mopc query` is the matching client. *)

open Cmdliner
module T = Cmdliner.Term

let parse_host_port spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 ->
          Ok ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Error (Printf.sprintf "bad port %S" port))

let serve socket tcp cache_capacity stripes jobs recv_timeout max_requests
    persist persist_interval verbose =
  if jobs < 0 then begin
    Format.eprintf "--jobs must be >= 0@.";
    exit 1
  end;
  if cache_capacity < 0 then begin
    Format.eprintf "--cache must be >= 0@.";
    exit 1
  end;
  if stripes < 1 then begin
    Format.eprintf "--stripes must be >= 1@.";
    exit 1
  end;
  if max_requests < 1 then begin
    Format.eprintf "--max-requests must be >= 1@.";
    exit 1
  end;
  (match persist_interval with
  | Some s when s <= 0. ->
      Format.eprintf "--persist-interval must be > 0@.";
      exit 1
  | Some _ when persist = None ->
      Format.eprintf "--persist-interval requires --persist@.";
      exit 1
  | _ -> ());
  let transport =
    match tcp with
    | None -> Mo_service.Server.Uds socket
    | Some spec -> (
        match parse_host_port spec with
        | Ok (host, port) -> Mo_service.Server.Tcp (host, port)
        | Error e ->
            Format.eprintf "--tcp: %s@." e;
            exit 1)
  in
  let cfg =
    {
      (Mo_service.Server.default_config ~socket_path:socket) with
      Mo_service.Server.transport;
      cache_capacity;
      stripes;
      jobs = (if jobs = 0 then None else Some jobs);
      recv_timeout_s = recv_timeout;
      max_conn_requests = max_requests;
      persist;
      persist_interval_s = persist_interval;
    }
  in
  let on_ready addr =
    let where =
      match addr with
      | Unix.ADDR_UNIX path -> path
      | Unix.ADDR_INET (ip, port) ->
          (* the *bound* port: --tcp HOST:0 reports the ephemeral one *)
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port
    in
    Printf.printf "mopcd: listening on %s (cache %d, pid %d)\n%!" where
      cache_capacity (Unix.getpid ())
  in
  if verbose then
    Printf.eprintf "mopcd: cache %d entries (%d stripes), read timeout %.1fs\n%!"
      cache_capacity stripes recv_timeout;
  match Mo_service.Server.run ~on_ready cfg with
  | () ->
      Printf.printf "mopcd: shut down cleanly\n%!";
      0
  | exception Unix.Unix_error (e, _, arg) ->
      Format.eprintf "mopcd: cannot serve: %s %s@." (Unix.error_message e)
        arg;
      1
  | exception Failure e ->
      (* startup refused: the socket path is owned by a live daemon, or
         is not a socket at all *)
      Format.eprintf "mopcd: %s@." e;
      1

let socket_arg =
  Arg.(
    value
    & opt string "mopcd.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path to listen on (ignored with $(b,--tcp))")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:
          "listen on TCP instead of the Unix-domain socket; port 0 binds \
           an ephemeral port and the ready line reports the actual one")

let cache_arg =
  Arg.(
    value
    & opt int 4096
    & info [ "cache" ] ~docv:"N"
        ~doc:"decision cache capacity in entries (0 disables caching)")

let stripes_arg =
  Arg.(
    value
    & opt int 8
    & info [ "stripes" ] ~docv:"N"
        ~doc:
          "lock stripes in the decision cache; concurrent connections \
           touching distinct digests never contend across stripes")

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains dispatching connections (and computing batch \
           members); 0 means the pool default (the $(b,MO_JOBS) \
           variable, else one per core)")

let timeout_arg =
  Arg.(
    value
    & opt float 10.
    & info [ "recv-timeout" ] ~docv:"SECONDS"
        ~doc:"close a connection after this long without a frame")

let max_requests_arg =
  Arg.(
    value
    & opt int 10_000
    & info [ "max-requests" ] ~docv:"N"
        ~doc:
          "hang up a connection after serving this many requests, so one \
           client cannot hold a dispatch worker forever (clients \
           reconnect)")

let persist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "persist" ] ~docv:"FILE"
        ~doc:
          "snapshot the digest-to-decision table to FILE at shutdown \
           (atomic rename) and reload it at startup — a restarted daemon \
           answers repeat queries warm")

let persist_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "persist-interval" ] ~docv:"SECS"
        ~doc:
          "with $(b,--persist), additionally snapshot the decision table \
           every SECS seconds from the accept loop, so even a kill-9'd \
           daemon restarts warm from the last interval")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"log to stderr")

let main_cmd =
  let doc =
    "serve message-ordering classification queries over a Unix-domain \
     socket or TCP (client: mopc query)"
  in
  Cmd.v
    (Cmd.info "mopcd" ~version:"1.0.0" ~doc)
    T.(
      const serve $ socket_arg $ tcp_arg $ cache_arg $ stripes_arg
      $ jobs_arg $ timeout_arg $ max_requests_arg $ persist_arg
      $ persist_interval_arg $ verbose_arg)

let () = exit (Cmd.eval' main_cmd)
