(* mopc — message-ordering predicate classifier.

   The command-line frontend to the library: classify forbidden
   predicates, inspect their graphs and witnesses, browse the catalog, and
   run protocol simulations. *)

open Cmdliner
module T = Cmdliner.Term
open Mo_core
open Mo_protocol
open Mo_workload

let parse_pred input =
  match Parse.predicate input with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "cannot parse %S: %s" input e)

let pred_arg =
  let doc =
    "Forbidden predicate, e.g. \"x.s < y.s & y.r < x.r\". Guards: \
     src(x) = src(y), dst(x) = dst(y), color(x) = <int>."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PREDICATE" ~doc)

(* ---- classify ---- *)

let classify_run explain certificate json lattice input =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred ->
      if lattice then begin
        (if json then
           print_string
             (Mo_obs.Jsonb.to_string_pretty
                (Mo_service.Codec.lattice_payload pred))
         else
           Format.printf "%a@." Modelcheck.pp_placement
             (Modelcheck.placement ~sizes:Modelcheck.universe_sizes pred));
        0
      end
      else if json then begin
        (* the same payload the mopcd service serves: one builder, two
           surfaces, no drift *)
        print_string
          (Mo_obs.Jsonb.to_string_pretty
             (Mo_service.Codec.classify_payload pred));
        0
      end
      else if certificate then begin
        print_string (Necessity.certificate pred);
        0
      end
      else if explain then begin
        print_string (Classify.explain pred);
        0
      end
      else begin
        let result = Classify.classify pred in
        Format.printf "predicate:       %a@." Forbidden.pp pred;
        Format.printf "classification:  %a@." Classify.pp_result result;
        (match result.Classify.best_cycle with
        | Some cycle when List.length cycle > 2 ->
            Format.printf "@.lemma 4 contraction:@.%a@." Weaken.pp
              (Weaken.contract cycle)
        | _ -> ());
        0
      end

let explain_flag =
  Arg.(
    value & flag
    & info [ "e"; "explain" ]
        ~doc:"print a prose justification citing the paper's theorems")

let certificate_flag =
  Arg.(
    value & flag
    & info [ "c"; "certificate" ]
        ~doc:
          "print concrete refuting runs for the weaker protocol classes \
           (bounded search; slower)")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "machine-readable output (the canonical predicate, its digest \
           and the verdict) — the exact payload the mopcd service serves")

let lattice_flag =
  Arg.(
    value & flag
    & info [ "lattice" ]
        ~doc:
          "place the specification's run set against the rendez-vous → \
           asynchronous communication-model lattice instead (same output \
           as $(b,mopc lattice))")

let classify_cmd =
  let doc = "classify a forbidden predicate (Theorems 2-4)" in
  Cmd.v
    (Cmd.info "classify" ~doc)
    T.(
      const classify_run $ explain_flag $ certificate_flag $ json_flag
      $ lattice_flag $ pred_arg)

(* ---- graph ---- *)

let graph_run dot input =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred ->
      let g = Pgraph.of_predicate pred in
      if dot then begin
        let highlight =
          match (Classify.classify pred).Classify.best_cycle with
          | Some c -> c
          | None -> []
        in
        print_string (Pgraph.to_dot ~highlight g);
        0
      end
      else begin
        Format.printf "%a@." Pgraph.pp g;
        let cycles = Cycles.enumerate g in
        if cycles = [] then Format.printf "no cycles: not implementable@."
        else
          List.iter
            (fun c ->
              Format.printf "cycle (order %d, beta vertices {%s}): %a@."
                (Beta.order c)
                (String.concat ","
                   (List.map (fun v -> "x" ^ string_of_int v)
                      (Beta.beta_vertices c)))
                Cycles.pp_cycle c)
            cycles;
        0
      end

let graph_cmd =
  let doc = "print the predicate graph, its cycles and beta vertices" in
  let dot_flag =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:"emit Graphviz source (certificate cycle highlighted)")
  in
  Cmd.v (Cmd.info "graph" ~doc) T.(const graph_run $ dot_flag $ pred_arg)

(* ---- witness ---- *)

let witness_run input =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred ->
      (match Witness.build pred with
      | Witness.Witness w ->
          print_string (Mo_order.Diagram.render_abstract w.Witness.run);
          Format.printf "limit set: %s@."
            (Mo_order.Limits.cls_to_string
               (Mo_order.Limits.classify w.Witness.run))
      | Witness.Cyclic ->
          Format.printf
            "predicate is unsatisfiable (conjuncts force h > h): the \
             specification is all of X_async@."
      | Witness.Conflicting_guards ->
          Format.printf "guards are unsatisfiable@.");
      0

let witness_cmd =
  let doc = "construct the Theorem 2/4 witness run and locate it" in
  Cmd.v (Cmd.info "witness" ~doc) T.(const witness_run $ pred_arg)

(* ---- catalog ---- *)

let catalog_run () =
  Format.printf "%-22s %-18s %-10s %s@." "name" "classification"
    "exact" "source";
  Format.printf "%s@." (String.make 78 '-');
  List.iter
    (fun (e : Catalog.entry) ->
      let r = Classify.classify e.pred in
      Format.printf "%-22s %-18s %-10b %s@." e.name
        (Classify.verdict_to_string r.Classify.verdict)
        r.Classify.necessity_exact e.source)
    Catalog.all;
  Format.printf "@.multi-predicate specifications:@.";
  List.iter
    (fun (s : Spec.t) ->
      Format.printf "%-22s %-18s %d predicates@." s.Spec.name
        (Classify.verdict_to_string (Spec.classify s))
        (List.length s.Spec.predicates))
    [ Catalog.two_way_flush ];
  Format.printf
    "%-22s %-18s intersection of all crown lengths (Lemma 3.1)@."
    "logically-synchronous" "general";
  0

let catalog_cmd =
  let doc = "list the paper's named specifications with classifications" in
  Cmd.v (Cmd.info "catalog" ~doc) T.(const catalog_run $ const ())

(* ---- show (one catalog entry, in detail) ---- *)

let show_run name =
  match Catalog.find name with
  | None ->
      Format.eprintf "unknown catalog entry %S (try: mopc catalog)@." name;
      1
  | Some e ->
      Format.printf "%s — %s@.source: %s@.@." e.name e.description e.source;
      classify_run false false false false (Forbidden.to_string e.pred)

let show_cmd =
  let doc = "show one catalog entry in detail" in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v (Cmd.info "show" ~doc) T.(const show_run $ name_arg)

(* ---- simulate ---- *)

let protocols =
  [
    ("tagless", Tagless.factory);
    ("fifo", Fifo.factory);
    ("rst", Causal_rst.factory);
    ("ses", Causal_ses.factory);
    ("bss", Causal_bss.factory);
    ("sync", Sync_token.factory);
    ("sync-priority", Sync_priority.factory);
    ("flush", Flush.factory);
    ("to", Total_order.factory);
  ]

let workloads = [ "uniform"; "client-server"; "ring"; "bursty"; "broadcast"; "flood" ]

let make_workload name ~nprocs ~nmsgs ~seed =
  match name with
  | "uniform" -> (Gen.uniform ~nprocs ~nmsgs ~seed).Gen.ops
  | "client-server" -> (Gen.client_server ~nprocs ~nmsgs ~seed).Gen.ops
  | "ring" ->
      (Gen.ring ~nprocs ~rounds:(max 1 (nmsgs / nprocs)) ~seed).Gen.ops
  | "bursty" -> (Gen.bursty ~nprocs ~nmsgs ~seed).Gen.ops
  | "broadcast" ->
      (Gen.broadcast ~nprocs ~nbcasts:(max 1 (nmsgs / (nprocs - 1))) ~seed)
        .Gen.ops
  | "flood" ->
      (Gen.pairwise_flood ~nprocs
         ~per_pair:(max 1 (nmsgs / (nprocs * (nprocs - 1))))
         ~seed)
        .Gen.ops
  | other -> invalid_arg ("unknown workload " ^ other)

let parse_faults spec =
  match Net.parse spec with
  | Ok f -> f
  | Error e ->
      Format.eprintf "bad --faults spec: %s@." e;
      exit 1

let faults_arg =
  Arg.(
    value
    & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "fault injection: comma-separated $(b,drop=N), $(b,dup=N) \
           (permille), $(b,spike=NxF) (permille x latency factor), \
           $(b,part=SRC>DST\\@T1-T2) (directed link partition window), \
           $(b,crash=P\\@T1-T2) (process crash-restart window); part/crash \
           may repeat, e.g. drop=150,part=0>1\\@100-400,crash=2\\@200-500")

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"TOPOLOGY"
        ~doc:
          "multiplex channels over shared transports: $(b,shared) (one \
           transport carries every channel), $(b,per-pair) (a private \
           transport per directed pair), $(b,split2) (two transports, \
           channel SRC>DST rides (SRC+DST) mod 2). FIFO holds within a \
           channel only; a transport fault strikes every channel riding \
           it. Default: the historical per-pair wire, no transport layer")

let transport_faults_arg =
  Arg.(
    value
    & opt string ""
    & info [ "transport-faults" ] ~docv:"SPEC"
        ~doc:
          "transport-domain fault injection (requires $(b,--topology)): \
           comma-separated $(b,stall=T\\@T1-T2) (nothing moves on \
           transport T in the window; arrivals defer to its end), \
           $(b,tpart=T\\@T1-T2) (packets entering T in the window die), \
           $(b,tcrash=T\\@T1-T2) (in-flight and buffered packets lost, \
           per-channel wire seqnos reset); clauses may repeat and may \
           also be given directly in $(b,--faults)")

let parse_topology = function
  | None -> None
  | Some s -> (
      match Transport.topology_of_string s with
      | Ok t -> Some t
      | Error e ->
          Format.eprintf "bad --topology: %s@." e;
          exit 1)

let merge_fault_specs faults_str tfaults_str =
  match (faults_str, tfaults_str) with
  | "", s | s, "" -> s
  | a, b -> a ^ "," ^ b

let check_topology_faults ~topology (faults : Net.t) =
  if faults.Net.transport_faults <> [] && topology = None then begin
    Format.eprintf
      "transport faults (stall/tpart/tcrash) require --topology@.";
    exit 1
  end

let reliable_arg =
  Arg.(
    value & flag
    & info [ "reliable" ]
        ~doc:
          "wrap the protocol in the ack/retransmit recovery layer \
           (per-channel sequence numbers, cumulative acks, exponential \
           backoff); makes it live under --faults without restoring order")

let simulate_run proto wname nprocs nmsgs seed spec_str faults_str
    topology_str tfaults_str reliable diagram trace_out =
  match List.assoc_opt proto protocols with
  | None ->
      Format.eprintf "unknown protocol %S (choose from: %s)@." proto
        (String.concat ", " (List.map fst protocols));
      1
  | Some factory -> (
      let spec =
        match spec_str with
        | None -> None
        | Some s -> (
            match parse_pred s with
            | Ok p -> Some (Spec.make ~name:"cli" [ p ])
            | Error e ->
                prerr_endline e;
                exit 1)
      in
      let ops = make_workload wname ~nprocs ~nmsgs ~seed in
      let faults = parse_faults (merge_fault_specs faults_str tfaults_str) in
      let topology = parse_topology topology_str in
      check_topology_faults ~topology faults;
      let cfg =
        { (Sim.default_config ~nprocs) with Sim.seed; faults; topology }
      in
      let factory = if reliable then Wrap.reliable factory else factory in
      match Conformance.check ?spec cfg factory ops with
      | Error e ->
          Format.eprintf "simulation error: %s@." e;
          1
      | Ok r ->
          Format.printf "%a@." Conformance.pp_report r;
          (match (trace_out, r.Conformance.outcome.Sim.run) with
          | Some path, Some run ->
              Trace_io.write path run;
              Format.printf "trace written to %s@." path
          | Some _, None -> Format.printf "(no complete run to write)@."
          | None, _ -> ());
          (if diagram then
             match r.Conformance.outcome.Sim.run with
             | Some run when Mo_order.Run.nmsgs run <= 30 ->
                 print_string (Mo_order.Diagram.render_run run)
             | Some _ -> Format.printf "(run too large to draw)@."
             | None -> ());
          if r.Conformance.spec_ok = Some false then 2 else 0)

let simulate_cmd =
  let doc = "run a protocol on a workload and check a specification" in
  let proto =
    Arg.(
      value
      & opt string "rst"
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:"tagless | fifo | rst | bss | sync | sync-priority | flush | to")
  in
  let wname =
    Arg.(
      value
      & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:(String.concat " | " workloads))
  in
  let nprocs =
    Arg.(value & opt int 4 & info [ "n"; "nprocs" ] ~docv:"N")
  in
  let nmsgs = Arg.(value & opt int 40 & info [ "m"; "messages" ] ~docv:"M") in
  let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED") in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"PREDICATE"
          ~doc:"forbidden predicate to check the run against")
  in
  let diagram =
    Arg.(value & flag & info [ "d"; "diagram" ] ~doc:"draw the run")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:"write the recorded run as a monitor-format trace file")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    T.(
      const simulate_run $ proto $ wname $ nprocs $ nmsgs $ seed $ spec
      $ faults_arg $ topology_arg $ transport_faults_arg $ reliable_arg
      $ diagram $ trace_out)

(* ---- stats: run a seeded workload under observability ---- *)

let protocol_aliases =
  [
    ("causal_rst", "rst");
    ("causal_ses", "ses");
    ("causal_bss", "bss");
    ("sync_token", "sync");
    ("sync_priority", "sync-priority");
    ("total_order", "to");
    ("total-order", "to");
  ]

let resolve_protocol name =
  let canonical =
    match List.assoc_opt name protocol_aliases with
    | Some c -> c
    | None -> name
  in
  Option.map (fun f -> (canonical, f)) (List.assoc_opt canonical protocols)

let stats_run proto_spec wname nprocs nmsgs seed faults_str topology_str
    tfaults_str reliable json_out =
  let selected =
    if proto_spec = "all" then Ok protocols
    else
      let names = String.split_on_char ',' proto_spec in
      List.fold_left
        (fun acc n ->
          match (acc, resolve_protocol (String.trim n)) with
          | Error e, _ -> Error e
          | Ok _, None -> Error (String.trim n)
          | Ok l, Some p -> Ok (l @ [ p ]))
        (Ok []) names
  in
  match selected with
  | Error bad ->
      Format.eprintf "unknown protocol %S (choose from: %s, or aliases %s)@."
        bad
        (String.concat ", " (List.map fst protocols))
        (String.concat ", " (List.map fst protocol_aliases));
      1
  | Ok selected ->
      let ops = make_workload wname ~nprocs ~nmsgs ~seed in
      let faults = parse_faults (merge_fault_specs faults_str tfaults_str) in
      let topology = parse_topology topology_str in
      check_topology_faults ~topology faults;
      let cfg =
        { (Sim.default_config ~nprocs) with Sim.seed; faults; topology }
      in
      let rows =
        List.filter_map
          (fun (name, factory) ->
            (* one registry per protocol run: the recovery layer's net.*
               metrics land next to the sim.*/proto.* ones *)
            let registry = Mo_obs.Metrics.create () in
            let factory =
              if reliable then Wrap.reliable ~registry factory else factory
            in
            match Observe.run ~config:cfg ~registry factory ops with
            | Error e ->
                Format.eprintf "%s: simulation error: %s@." name e;
                None
            | Ok (registry, _outcome) ->
                Some (Observe.report_row registry ~factory))
          selected
      in
      if rows = [] then 1
      else begin
        Format.printf
          "workload %s: %d processes, %d messages, seed %d@.@." wname nprocs
          nmsgs seed;
        Format.printf "%a@." Mo_obs.Report.pp_comparison rows;
        (match rows with
        | [ row ] -> Format.printf "%a@." Mo_obs.Report.pp_registry row
        | _ -> ());
        (match json_out with
        | None -> ()
        | Some path ->
            let meta =
              Mo_obs.Jsonb.Obj
                [
                  ("name", Mo_obs.Jsonb.String wname);
                  ("nprocs", Mo_obs.Jsonb.Int nprocs);
                  ("nmsgs", Mo_obs.Jsonb.Int nmsgs);
                  ("seed", Mo_obs.Jsonb.Int seed);
                ]
            in
            let json =
              match Mo_obs.Report.to_json rows with
              | Mo_obs.Jsonb.Obj fields ->
                  Mo_obs.Jsonb.Obj (("workload", meta) :: fields)
              | j -> j
            in
            let text = Mo_obs.Jsonb.to_string_pretty json in
            if path = "-" then print_string text
            else begin
              let oc = open_out path in
              output_string oc text;
              close_out oc;
              Format.printf "metrics written to %s@." path
            end);
        0
      end

let stats_cmd =
  let doc =
    "run a seeded workload under one or more protocols and print the \
     observability metrics (tag bytes, control traffic, inhibition time, \
     delivery delay, queue depth) — the paper's class hierarchy as measured \
     costs"
  in
  let proto =
    Arg.(
      value
      & opt string "all"
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:
            "protocol name, comma-separated list, or 'all'; accepts the \
             simulate names plus aliases like causal_rst, sync_token, \
             total_order")
  in
  let wname =
    Arg.(
      value
      & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:(String.concat " | " workloads))
  in
  let nprocs = Arg.(value & opt int 4 & info [ "n"; "nprocs" ] ~docv:"N") in
  let nmsgs = Arg.(value & opt int 100 & info [ "m"; "messages" ] ~docv:"M") in
  let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED") in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"write the metrics as JSON ('-' for stdout)")
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    T.(
      const stats_run $ proto $ wname $ nprocs $ nmsgs $ seed $ faults_arg
      $ topology_arg $ transport_faults_arg $ reliable_arg $ json_out)

(* ---- synth ---- *)

let synth_run input =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred -> (
      match Synth.for_predicate pred with
      | Error e ->
          Format.printf "not implementable: %s@." e;
          2
      | Ok (factory, result) ->
          Format.printf "classification: %s@."
            (Classify.verdict_to_string result.Classify.verdict);
          Format.printf "universal:      %s (%s)@."
            factory.Protocol.proto_name
            (Protocol.kind_to_string factory.Protocol.kind);
          (match Synth.optimize ~result pred with
          | Ok c when c.Synth.factory.Protocol.proto_name <> factory.Protocol.proto_name ->
              Format.printf "optimized:      %s — %s@."
                c.Synth.factory.Protocol.proto_name c.Synth.rationale
          | Ok c -> Format.printf "optimized:      (same) %s@." c.Synth.rationale
          | Error _ -> ());
          0)

let synth_cmd =
  let doc = "pick the weakest protocol class implementing a predicate" in
  Cmd.v (Cmd.info "synth" ~doc) T.(const synth_run $ pred_arg)

(* ---- implies: specification containment ---- *)

let implies_run json input1 input2 =
  match (parse_pred input1, parse_pred input2) with
  | Error e, _ | _, Error e ->
      prerr_endline e;
      1
  | Ok b, Ok b' when json ->
      print_string
        (Mo_obs.Jsonb.to_string_pretty
           (Mo_service.Codec.implies_payload b b'));
      0
  | Ok b, Ok b' ->
      let fwd = Implies.check b b' and bwd = Implies.check b' b in
      Format.printf "B  = %a@.B' = %a@." Forbidden.pp b Forbidden.pp b';
      Format.printf "B ⟹ B': %b    B' ⟹ B: %b@." fwd bwd;
      (match Implies.compare_specs b b' with
      | `Equivalent -> Format.printf "the specifications are equivalent@."
      | `Weaker ->
          Format.printf
            "X_B' ⊂ X_B: the second specification is stronger (forbids \
             more); a protocol for it also implements the first@."
      | `Stronger ->
          Format.printf
            "X_B ⊂ X_B': the first specification is stronger; a protocol \
             for it also implements the second@."
      | `Incomparable -> Format.printf "the specifications are incomparable@.");
      0

let implies_cmd =
  let doc =
    "decide implication between two forbidden predicates (specification \
     containment, via the canonical witness)"
  in
  let p1 = Arg.(required & pos 0 (some string) None & info [] ~docv:"B") in
  let p2 = Arg.(required & pos 1 (some string) None & info [] ~docv:"B'") in
  Cmd.v (Cmd.info "implies" ~doc) T.(const implies_run $ json_flag $ p1 $ p2)

(* ---- batch: classify a file of predicates ---- *)

let batch_run path =
  let ic = if path = "-" then stdin else open_in path in
  let rec lines acc =
    match input_line ic with
    | l -> lines (l :: acc)
    | exception End_of_file ->
        if path <> "-" then close_in ic;
        List.rev acc
  in
  let entries =
    List.filteri
      (fun _ l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      (lines [])
  in
  Format.printf "%-44s %-18s %s@." "predicate" "classification"
    "optimized protocol";
  Format.printf "%s@." (String.make 78 '-');
  let failures = ref 0 in
  List.iter
    (fun line ->
      match parse_pred (String.trim line) with
      | Error e ->
          incr failures;
          Format.printf "%-44s parse error: %s@." (String.trim line) e
      | Ok pred ->
          let r = Classify.classify pred in
          let proto =
            match Synth.optimize ~result:r pred with
            | Ok c -> c.Synth.factory.Protocol.proto_name
            | Error _ -> "-"
          in
          Format.printf "%-44s %-18s %s@."
            (Forbidden.to_string pred)
            (Classify.verdict_to_string r.Classify.verdict)
            proto)
    entries;
  if !failures = 0 then 0 else 1

let batch_cmd =
  let doc =
    "classify every predicate in a file (one per line, '#' comments, '-' \
     for stdin) and show the optimized protocol choice"
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  Cmd.v (Cmd.info "batch" ~doc) T.(const batch_run $ path_arg)

(* ---- monitor: stream a trace file through the online checkers ---- *)

let read_trace_text path =
  if path = "-" then Ok (In_channel.input_all stdin)
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> Ok text
    | exception Sys_error e -> Error e

(* the fixed checks: FIFO + causal as events arrive, SYNC at the end *)
let monitor_fixed diagram text =
  match Trace_io.parse_prefix text with
  | Error e ->
      prerr_endline (Trace_io.error_to_string e);
      1
  | Ok p ->
      let max_id =
        List.fold_left
          (fun acc ev ->
            match ev with `Send (m, _, _, _) | `Deliver m -> max acc m)
          (-1) p.Trace_io.p_events
      in
      let t =
        Mo_order.Online.create ~nprocs:p.Trace_io.p_nprocs
          ~nmsgs:(max_id + 1)
      in
      let nviolations = ref 0 in
      List.iter
        (fun ev ->
          match ev with
          | `Send (msg, src, dst, _) -> Mo_order.Online.send t ~msg ~src ~dst
          | `Deliver msg ->
              List.iter
                (fun (v : Mo_order.Online.violation) ->
                  incr nviolations;
                  let src, dst = v.channel in
                  Format.printf
                    "%s violation at event %d: x%d overtook x%d on channel \
                     %d->%d@."
                    (match v.kind with `Fifo -> "FIFO" | `Causal -> "causal")
                    v.at v.later v.earlier src dst)
                (Mo_order.Online.deliver t ~msg))
        p.Trace_io.p_events;
      (match Mo_order.Online.finalize_sync t with
      | Ok _ -> Format.printf "logically synchronous: yes@."
      | Error cycle ->
          Format.printf "logically synchronous: no (crown through {%s})@."
            (String.concat "," (List.map string_of_int cycle)));
      Format.printf "violations: %d@." !nviolations;
      (if diagram then
         match Trace_io.parse text with
         | Ok run -> print_string (Mo_order.Diagram.render_run run)
         | Error e ->
             Format.printf "(cannot draw: %s)@."
               (Trace_io.error_to_string e));
      if !nviolations = 0 then 0 else 2

(* a compiled monitor for one forbidden predicate over the same stream *)
let monitor_pred input window text =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred -> (
      match Trace_io.parse_prefix text with
      | Error e ->
          prerr_endline (Trace_io.error_to_string e);
          1
      | Ok p -> (
          let window =
            match window with
            | Some w -> w
            | None -> Mo_order.Monitor.max_window
          in
          let feed () =
            let t =
              Mo_core.Pmon.create ~window
                ~nprocs:(max p.Trace_io.p_nprocs 1)
                (Eval.compile pred)
            in
            List.iter
              (fun ev ->
                match ev with
                | `Send (msg, src, dst, color) ->
                    ignore (Mo_core.Pmon.send t ~msg ~src ~dst ?color ())
                | `Deliver msg -> ignore (Mo_core.Pmon.deliver t ~msg))
              p.Trace_io.p_events;
            t
          in
          match feed () with
          | exception Invalid_argument e ->
              prerr_endline e;
              1
          | t ->
              let m = Mo_core.Pmon.monitor t in
              Format.printf "events: %d  pending: %d  frontier: %d bytes@."
                (Mo_order.Monitor.events m)
                (Mo_order.Monitor.pending m)
                (Mo_order.Monitor.frontier_bytes m);
              (match Mo_core.Pmon.verdict t with
              | None ->
                  Format.printf "no violation@.";
                  0
              | Some v ->
                  Format.printf
                    "violation at event %d: %s with {%s}@." v.Mo_core.Pmon.at
                    (Forbidden.to_string pred)
                    (String.concat ", "
                       (Array.to_list
                          (Array.mapi
                             (fun i m -> Printf.sprintf "x%d=%d" i m)
                             v.Mo_core.Pmon.witness)));
                  2)))

let monitor_run diagram pred window path =
  match read_trace_text path with
  | Error e ->
      prerr_endline e;
      1
  | Ok text -> (
      match pred with
      | None -> monitor_fixed diagram text
      | Some input -> monitor_pred input window text)

let monitor_cmd =
  let doc =
    "stream a trace file ('send <msg> <src> <dst> [color]' / 'deliver \
     <msg>', one per line, '#' comments, '-' for stdin) through the \
     online monitors: the fixed FIFO/causal/SYNC checks by default, or a \
     compiled monitor for an arbitrary forbidden predicate with \
     $(b,--pred). Exits 2 when a violation is found."
  in
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE")
  in
  let diagram_flag =
    Arg.(value & flag & info [ "d"; "diagram" ] ~doc:"draw the trace")
  in
  let pred_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "pred" ] ~docv:"PREDICATE"
          ~doc:
            "monitor this forbidden predicate instead of the fixed checks; \
             detection fires at the earliest event that makes a match \
             unavoidable")
  in
  let window_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"N"
          ~doc:
            "retire delivered messages beyond the most recent N (bounded \
             memory; only used with $(b,--pred), default the maximum)")
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    T.(const monitor_run $ diagram_flag $ pred_opt $ window_opt $ path_arg)

(* ---- universe: parallel model checking of the Lemma 3 identities ---- *)

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "worker domains for the parallel engine; 0 means the default \
           (the $(b,MO_JOBS) variable, else one per core). Results are \
           identical for every N.")

let make_pool jobs =
  if jobs < 0 then begin
    Format.eprintf "--jobs must be >= 0@.";
    exit 1
  end
  else if jobs = 0 then Mo_par.Pool.create ()
  else Mo_par.Pool.create ~jobs ()

let universe_run deep vast sym jobs =
  let pool = make_pool jobs in
  let sizes =
    if vast then Modelcheck.vast_sizes
    else if deep then Modelcheck.deep_sizes
    else Modelcheck.standard_sizes
  in
  Format.printf "sizes (procs,msgs): %s   jobs: %d%s@."
    (String.concat " "
       (List.map (fun (p, m) -> Printf.sprintf "(%d,%d)" p m) sizes))
    (Mo_par.Pool.jobs pool)
    (if sym then "   sym: orbit representatives" else "");
  let v = Modelcheck.verify ~pool ~sym ~sizes () in
  Format.printf "%a@." Modelcheck.pp_verdict v;
  if Modelcheck.ok v then 0 else 2

let sym_flag =
  Arg.(
    value & flag
    & info [ "sym" ]
        ~doc:
          "enumerate one canonical representative per process/message \
           symmetry orbit and expand counts by exact orbit sizes; \
           verdicts and counts are byte-identical to the concrete \
           enumeration, the wall time is not")

let universe_cmd =
  let doc =
    "enumerate every run at the paper's sizes and verify X_sync ⊆ X_co ⊆ \
     X_async and the Lemma 3.2/3.3 identities (parallel over message \
     configurations)"
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "extend the universe to 4 processes / 4 messages (millions of \
             runs; use with --jobs)")
  in
  let vast =
    Arg.(
      value & flag
      & info [ "vast" ]
          ~doc:
            "extend the universe to 5 processes / 5 messages (77.8 million \
             runs, ~83x --deep; intended with $(b,--sym), which walks only \
             the ~31,700 orbit representatives)")
  in
  Cmd.v (Cmd.info "universe" ~doc)
    T.(const universe_run $ deep $ vast $ sym_flag $ jobs_arg)

(* ---- lattice: place a spec against the communication-model lattice ---- *)

let lattice_run json kmax sym jobs input =
  match parse_pred input with
  | Error e ->
      prerr_endline e;
      1
  | Ok pred ->
      if kmax < 1 then begin
        Format.eprintf "--kmax must be >= 1@.";
        1
      end
      else if json then begin
        (* the exact payload the mopcd [lattice] op serves: one builder,
           two surfaces, no drift *)
        print_string
          (Mo_obs.Jsonb.to_string_pretty
             (Mo_service.Codec.lattice_payload ~kmax pred));
        0
      end
      else begin
        let pool = make_pool jobs in
        Format.printf "%a@." Modelcheck.pp_placement
          (Modelcheck.placement ~pool ~kmax ~sym
             ~sizes:Modelcheck.universe_sizes pred);
        0
      end

let lattice_cmd =
  let doc =
    "place a specification against every point of the rendez-vous → \
     asynchronous communication-model lattice (RSC, k-synchronous, \
     one-queue FIFO, causal, mailbox/inverse-mailbox/channel FIFO, \
     async) over the enumerated universe"
  in
  let kmax =
    Arg.(
      value
      & opt int 3
      & info [ "kmax" ] ~docv:"K"
          ~doc:
            "largest k-synchronous point swept; honored by $(b,--json) \
             too (the service payload carries its kmax, and mopcd caches \
             per kmax)")
  in
  Cmd.v (Cmd.info "lattice" ~doc)
    T.(const lattice_run $ json_flag $ kmax $ sym_flag $ jobs_arg $ pred_arg)

(* ---- explore: exhaustive schedule exploration of one protocol ---- *)

let explore_run proto wname nprocs nmsgs seed max_execs jobs =
  match List.assoc_opt proto protocols with
  | None ->
      Format.eprintf "unknown protocol %S (choose from: %s)@." proto
        (String.concat ", " (List.map fst protocols));
      1
  | Some factory -> (
      let pool = make_pool jobs in
      let ops = make_workload wname ~nprocs ~nmsgs ~seed in
      match
        Explore.distinct_user_views_par ~pool ~max_executions:max_execs
          ~nprocs factory ops
      with
      | Error e ->
          Format.eprintf "protocol misbehaviour: %s@." e;
          1
      | Ok (views, stats) ->
          let classes = Hashtbl.create 8 in
          List.iter
            (fun r ->
              let c =
                Mo_order.Limits.cls_to_string
                  (Mo_order.Limits.classify (Mo_order.Run.to_abstract r))
              in
              Hashtbl.replace classes c
                (1 + Option.value ~default:0 (Hashtbl.find_opt classes c)))
            views;
          Format.printf
            "%s on %s (%d procs, %d msgs, seed %d): %d executions%s, %d \
             distinct user views@."
            proto wname nprocs nmsgs seed stats.Explore.executions
            (if stats.Explore.truncated then " (truncated)" else "")
            (List.length views);
          Hashtbl.fold (fun c n acc -> (c, n) :: acc) classes []
          |> List.sort compare
          |> List.iter (fun (c, n) ->
                 Format.printf "  %4d views in %s@." n c);
          0)

let explore_cmd =
  let doc =
    "enumerate every network schedule of a small workload under a \
     protocol and bucket the distinct user views by limit set (parallel \
     over schedule subtrees)"
  in
  let proto =
    Arg.(
      value
      & opt string "fifo"
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:"tagless | fifo | rst | ses | bss | sync | sync-priority | \
                flush | to")
  in
  let wname =
    Arg.(
      value
      & opt string "uniform"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:(String.concat " | " workloads))
  in
  let nprocs = Arg.(value & opt int 2 & info [ "n"; "nprocs" ] ~docv:"N") in
  let nmsgs = Arg.(value & opt int 3 & info [ "m"; "messages" ] ~docv:"M") in
  let seed = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED") in
  let max_execs =
    Arg.(
      value
      & opt int 200_000
      & info [ "max" ] ~docv:"K"
          ~doc:"truncate the search after K complete executions")
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    T.(
      const explore_run $ proto $ wname $ nprocs $ nmsgs $ seed $ max_execs
      $ jobs_arg)

(* ---- query: client for the mopcd service ---- *)

let query_request op args =
  let open Mo_service.Codec in
  let pred s = Result.map_error (fun e -> e) (parse_pred s) in
  match (op, args) with
  | "classify", [ p ] -> Result.map (fun p -> Classify p) (pred p)
  | "witness", [ p ] -> Result.map (fun p -> Witness p) (pred p)
  | "lattice", [ p ] -> Result.map (fun p -> Lattice (p, None)) (pred p)
  | "lattice", [ p; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 ->
          Result.map (fun p -> Lattice (p, Some k)) (pred p)
      | _ -> Error "lattice KMAX must be an integer >= 1")
  | "implies", [ a; b ] ->
      Result.bind (pred a) (fun a ->
          Result.map (fun b -> Implies (a, b)) (pred b))
  | "minimize", (_ :: _ as ps) ->
      List.fold_left
        (fun acc s ->
          Result.bind acc (fun l ->
              Result.map (fun p -> p :: l) (pred s)))
        (Ok []) ps
      |> Result.map (fun l -> Minimize (List.rev l))
  | "stats", [] -> Ok Stats
  | "shutdown", [] -> Ok Shutdown
  | "monitor", [ p; path ] ->
      Result.bind (pred p) (fun p ->
          match read_trace_text path with
          | Ok trace -> Ok (Monitor (p, trace, None))
          | Error e -> Error e)
  | "classify", _ | "witness", _ -> Error (op ^ " takes one PREDICATE")
  | "lattice", _ -> Error "lattice takes a PREDICATE and an optional KMAX"
  | "implies", _ -> Error "implies takes two predicates"
  | "minimize", _ -> Error "minimize takes at least one predicate"
  | "monitor", _ -> Error "monitor takes a PREDICATE and a TRACE file"
  | ("stats" | "shutdown"), _ -> Error (op ^ " takes no arguments")
  | _ ->
      Error
        (Printf.sprintf
           "unknown op %S (classify | implies | minimize | witness | \
            lattice | monitor | stats | shutdown)"
           op)

let parse_host_port spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 ->
          Ok ((if host = "" then "127.0.0.1" else host), p)
      | _ -> Error (Printf.sprintf "bad port %S" port))

let query_run socket tcp deadline_ms op args =
  let addr =
    match tcp with
    | None -> Ok (Mo_service.Client.Uds socket)
    | Some spec ->
        Result.map
          (fun (h, p) -> Mo_service.Client.Tcp (h, p))
          (parse_host_port spec)
  in
  match Result.bind addr (fun addr -> Result.map (fun req -> (addr, req)) (query_request op args)) with
  | Error e ->
      prerr_endline e;
      1
  | Ok (addr, req) -> (
      match Mo_service.Client.connect_addr addr with
      | Error e ->
          prerr_endline e;
          1
      | Ok client ->
          let r = Mo_service.Client.call client ?deadline_ms req in
          Mo_service.Client.close client;
          (match r with
          | Ok payload ->
              print_string (Mo_obs.Jsonb.to_string_pretty payload);
              0
          | Error e ->
              prerr_endline ("query failed: " ^ e);
              1))

let query_cmd =
  let doc =
    "query a running mopcd service (classify | implies | minimize | \
     witness | lattice | monitor | stats | shutdown) and print the JSON \
     result"
  in
  let socket =
    Arg.(
      value
      & opt string "mopcd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"mopcd socket path")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"query a TCP daemon instead of the Unix-domain socket")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"per-request deadline enforced by the server")
  in
  let op_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OP")
  in
  let rest_args =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ARG")
  in
  Cmd.v
    (Cmd.info "query" ~doc)
    T.(const query_run $ socket $ tcp $ deadline $ op_arg $ rest_args)

let main_cmd =
  let doc = "message ordering specifications and protocols (Murty & Garg)" in
  Cmd.group
    (Cmd.info "mopc" ~version:"1.0.0" ~doc)
    [
      classify_cmd;
      graph_cmd;
      witness_cmd;
      catalog_cmd;
      show_cmd;
      simulate_cmd;
      stats_cmd;
      synth_cmd;
      implies_cmd;
      batch_cmd;
      monitor_cmd;
      universe_cmd;
      lattice_cmd;
      explore_cmd;
      query_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
